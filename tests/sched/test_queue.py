"""JobQueue unit tests: the lease state machine, with a fake clock.

Every lease-expiry scenario advances an injected clock instead of
sleeping, so the whole state machine — claim, heartbeat, requeue,
bounded retries, idempotent completion, resumable resubmission — is
exercised deterministically and instantly.
"""

import pytest

from repro.errors import SchedulerError, SweepOwnershipError
from repro.sched import JobQueue


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    with JobQueue(tmp_path / "jobs.sqlite", lease_seconds=10.0, clock=clock) as q:
        yield q


def submit(queue, n=3, sweep_id="s1", **kwargs):
    return queue.submit(
        sweep_id,
        [(f"key{i}", {"workload": f"app{i}"}) for i in range(n)],
        **kwargs,
    )


class TestSubmitAndClaim:
    def test_submit_queues_in_order_and_claim_respects_it(self, queue):
        jobs = submit(queue, 3)
        assert [job["state"] for job in jobs] == ["queued"] * 3
        assert [job["id"] for job in jobs] == ["s1:0", "s1:1", "s1:2"]
        claimed = queue.claim("w1", limit=2)
        assert [job["spec_key"] for job in claimed] == ["key0", "key1"]
        assert all(job["state"] == "running" for job in claimed)
        assert all(job["attempts"] == 1 for job in claimed)
        assert all(job["worker_id"] == "w1" for job in claimed)

    def test_precompleted_keys_are_done_without_queueing(self, queue):
        jobs = submit(queue, 3, precompleted={"key1"})
        assert [job["state"] for job in jobs] == ["queued", "done", "queued"]
        assert jobs[1]["result_source"] == "store"
        claimed_keys = {job["spec_key"] for job in queue.claim("w1", limit=10)}
        assert claimed_keys == {"key0", "key2"}

    def test_claim_returns_payload_spec(self, queue):
        submit(queue, 1)
        (job,) = queue.claim("w1")
        assert job["spec"] == {"workload": "app0"}

    def test_empty_queue_claims_nothing(self, queue):
        assert queue.claim("w1", limit=5) == []

    def test_resubmission_resumes(self, queue, clock):
        submit(queue, 2)
        (job,) = queue.claim("w1", limit=1)
        queue.complete(job["id"], "w1")
        # The other job fails out of budget.
        (other,) = queue.claim("w1", limit=1)
        for _ in range(5):
            failed = queue.fail(other["id"], "w1", error="boom")
            if failed["state"] == "failed":
                break
            (other,) = queue.claim("w1", limit=1)
        assert queue.job("s1:1")["state"] == "failed"

        jobs = submit(queue, 2)  # resume the same sweep
        assert jobs[0]["state"] == "done"  # untouched
        assert jobs[1]["state"] == "queued"  # failed -> requeued, fresh budget
        assert jobs[1]["attempts"] == 0

    def test_resubmission_with_different_spec_is_rejected(self, queue):
        submit(queue, 1)
        with pytest.raises(SchedulerError, match="fresh sweep_id"):
            queue.submit("s1", [("other-key", {"workload": "x"})])

    def test_sweep_ownership_is_claimed_atomically(self, queue, tmp_path, clock):
        assert queue.sweep_owner("s1") == (False, None)
        submit(queue, 2, owner="alpha")
        assert queue.sweep_owner("s1") == (True, "alpha")
        # Same owner resumes; a different owner is rejected inside the
        # submit transaction; an unscoped (admin) caller may resume any
        # sweep without overwriting the record.
        submit(queue, 2, owner="alpha")
        with pytest.raises(SweepOwnershipError):
            submit(queue, 2, owner="beta")
        submit(queue, 2)
        assert queue.sweep_owner("s1") == (True, "alpha")
        # A rejected submission enqueues nothing.
        assert len(queue.jobs(sweep_id="s1")) == 2
        # Ownership is durable: a reopened queue file still knows it.
        queue.close()
        with JobQueue(tmp_path / "jobs.sqlite", clock=clock) as reopened:
            assert reopened.sweep_owner("s1") == (True, "alpha")

    def test_anonymous_sweep_stays_anonymous(self, queue):
        submit(queue, 1)
        assert queue.sweep_owner("s1") == (True, None)
        # A scoped caller cannot adopt a sweep submitted anonymously.
        with pytest.raises(SweepOwnershipError):
            submit(queue, 1, owner="alpha")

    def test_malformed_arguments_raise(self, queue):
        with pytest.raises(SchedulerError):
            queue.submit("bad/sweep", [("k", {})])
        with pytest.raises(SchedulerError):
            queue.claim("")
        with pytest.raises(SchedulerError):
            queue.claim("w1", limit=0)
        with pytest.raises(SchedulerError):
            queue.claim("w1", lease_seconds=0)
        with pytest.raises(SchedulerError):
            submit(queue, 1, max_attempts=0)


class TestLeases:
    def test_expired_lease_requeues_for_another_worker(self, queue, clock):
        submit(queue, 1)
        (job,) = queue.claim("w1", lease_seconds=10.0)
        assert queue.claim("w2") == []  # still leased
        clock.advance(10.1)
        (reclaimed,) = queue.claim("w2")
        assert reclaimed["id"] == job["id"]
        assert reclaimed["worker_id"] == "w2"
        assert reclaimed["attempts"] == 2
        assert queue.stats()["counters"]["leases_requeued"] == 1

    def test_heartbeat_extends_the_lease(self, queue, clock):
        submit(queue, 1)
        (job,) = queue.claim("w1", lease_seconds=10.0)
        clock.advance(8.0)
        beat = queue.heartbeat("w1", [job["id"]], lease_seconds=10.0)
        assert beat == {"owned": [job["id"]], "lost": []}
        clock.advance(8.0)  # 16s after claim, 8s after heartbeat
        assert queue.claim("w2") == []

    def test_lost_job_is_reported_on_heartbeat(self, queue, clock):
        submit(queue, 1)
        (job,) = queue.claim("w1", lease_seconds=10.0)
        clock.advance(10.1)
        queue.claim("w2")  # w2 takes over after the lapse
        beat = queue.heartbeat("w1", [job["id"]])
        assert beat == {"owned": [], "lost": [job["id"]]}

    def test_attempt_budget_exhaustion_parks_the_job_failed(self, queue, clock):
        submit(queue, 1, max_attempts=2)
        for _ in range(2):
            (job,) = queue.claim("w1", lease_seconds=5.0)
            clock.advance(5.1)
        assert queue.claim("w1") == []  # budget spent: nothing claimable
        parked = queue.job(job["id"])
        assert parked["state"] == "failed"
        assert "lease expired" in parked["error"]
        assert queue.stats()["counters"]["leases_exhausted"] == 1


class TestCompletion:
    def test_complete_is_idempotent(self, queue):
        submit(queue, 1)
        (job,) = queue.claim("w1")
        first = queue.complete(job["id"], "w1")
        again = queue.complete(job["id"], "w2")
        assert (first["duplicate"], again["duplicate"]) == (False, True)
        assert again["state"] == "done"
        counters = queue.stats()["counters"]
        assert counters["completes"] == 1
        assert counters["duplicate_completes"] == 1

    def test_late_completion_from_a_presumed_dead_worker_is_accepted(
        self, queue, clock
    ):
        submit(queue, 1)
        (job,) = queue.claim("w1", lease_seconds=5.0)
        clock.advance(5.1)
        queue.claim("w2")  # requeued and reclaimed
        outcome = queue.complete(job["id"], "w1")  # w1 finishes late
        assert outcome["state"] == "done"
        assert not outcome["duplicate"]

    def test_unknown_job_returns_none(self, queue):
        assert queue.complete("nope:0") is None
        assert queue.fail("nope:0") is None
        assert queue.job("nope:0") is None

    def test_stale_failure_from_a_dispossessed_worker_is_ignored(
        self, queue, clock
    ):
        submit(queue, 1)
        (job,) = queue.claim("w1", lease_seconds=5.0)
        clock.advance(5.1)
        (reclaimed,) = queue.claim("w2")  # w2 owns it now
        stale = queue.fail(job["id"], "w1", error="late boom")
        assert stale["state"] == "running"
        assert stale["worker_id"] == "w2"
        assert stale["error"] is None
        assert queue.stats()["counters"]["stale_failures"] == 1
        # w2's own failure report still lands.
        assert queue.fail(reclaimed["id"], "w2", error="real boom")["error"] == "real boom"

    def test_fail_requeues_within_budget_then_parks(self, queue):
        submit(queue, 1, max_attempts=2)
        (job,) = queue.claim("w1")
        retried = queue.fail(job["id"], "w1", error="first boom")
        assert retried["state"] == "queued"
        assert retried["error"] == "first boom"
        (job,) = queue.claim("w1")
        parked = queue.fail(job["id"], "w1", error="second boom")
        assert parked["state"] == "failed"
        assert parked["error"] == "second boom"


class TestControlAndIntrospection:
    def test_cancel_hits_queued_jobs_only(self, queue):
        submit(queue, 3)
        (running,) = queue.claim("w1", limit=1)
        assert queue.cancel("s1") == 2
        assert queue.job(running["id"])["state"] == "running"
        progress = queue.progress("s1")
        assert progress["cancelled"] == 2
        assert progress["running"] == 1

    def test_progress_sweeps_lapsed_leases_and_lists_failures(self, queue, clock):
        submit(queue, 2, max_attempts=1)
        queue.claim("w1", limit=2, lease_seconds=5.0)
        clock.advance(5.1)
        progress = queue.progress("s1")
        assert progress["failed"] == 2
        assert progress["pending"] == 0
        assert len(progress["failed_jobs"]) == 2
        assert all("lease expired" in job["error"] for job in progress["failed_jobs"])

    def test_progress_scopes_by_sweep(self, queue):
        submit(queue, 2, sweep_id="a")
        submit(queue, 3, sweep_id="b")
        assert queue.progress("a")["total"] == 2
        assert queue.progress("b")["total"] == 3
        assert queue.progress()["total"] == 5

    def test_queue_persists_across_reopen(self, tmp_path, clock):
        path = tmp_path / "jobs.sqlite"
        with JobQueue(path, clock=clock) as queue:
            submit(queue, 2)
            (job,) = queue.claim("w1", limit=1)
            queue.complete(job["id"], "w1")
        with JobQueue(path, clock=clock) as reopened:
            assert reopened.progress()["done"] == 1
            (job,) = reopened.claim("w2", limit=5)
            assert job["spec_key"] == "key1"

    def test_jobs_filtering(self, queue):
        submit(queue, 3)
        (running,) = queue.claim("w1", limit=1)
        assert len(queue.jobs(state="queued")) == 2
        assert [job["id"] for job in queue.jobs(state="running")] == [running["id"]]
        with pytest.raises(SchedulerError):
            queue.jobs(state="bogus")
