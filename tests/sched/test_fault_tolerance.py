"""Scheduler fault tolerance: dead workers must not lose a sweep.

Two failure injections:

- an in-process :class:`Worker` with ``crash_after_claims`` — vanishes
  holding its leases (the SIGKILL state machine, without a process);
- a real ``repro-tlb worker`` subprocess killed with ``SIGKILL``
  mid-job (``--slow`` makes "mid-job" deterministic).

Either way the contract is the same: the lapsed lease requeues the
spec, the surviving fleet finishes the sweep, and the ResultSet is
byte-identical to serial execution.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.run import MissStreamCache, Runner, RunSpec
from repro.sched import SchedulerClient, Worker
from repro.service import make_server

SCALE = 0.05
LEASE = 1.0


def sweep_specs(count=4):
    mechanisms = ("DP", "RP", "ASP", "MP")
    return [
        RunSpec.of("galgel", mechanisms[i % len(mechanisms)], scale=SCALE, rows=64)
        for i in range(count)
    ]


@pytest.fixture
def server(tmp_path):
    server = make_server(tmp_path / "store", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def client(server):
    client = SchedulerClient(server.url)
    client.wait_healthy()
    return client


class TestCrashedWorker:
    def test_lease_expiry_requeues_a_vanished_workers_spec(self, server, client):
        specs = sweep_specs(3)
        serial = Runner(cache=MissStreamCache()).run(specs)

        # The casualty claims one job and vanishes without completing
        # it or heartbeating again — exactly a SIGKILL'd process.
        casualty = Worker(
            server.url, lease_seconds=LEASE, poll_interval=0.02, batch=1,
            crash_after_claims=1,
        )
        survivor = Worker(server.url, lease_seconds=LEASE, poll_interval=0.02)
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in (casualty, survivor)
        ]
        # Deterministic ordering: queue the jobs, let the casualty claim
        # one and vanish, and only then let the survivor at the queue.
        batch = client.submit_jobs([spec.to_dict() for spec in specs])
        threads[0].start()
        started = time.monotonic()
        deadline = started + 30
        while not casualty.crashed:
            assert time.monotonic() < deadline, "casualty never claimed a job"
            time.sleep(0.01)
        results = None
        try:
            threads[1].start()
            results = client.submit_sweep(
                specs, sweep_id=batch["sweep_id"], poll_interval=0.02, timeout=60
            )
        finally:
            survivor.stop()
            for thread in threads:
                thread.join(timeout=10)

        assert casualty.crashed and casualty.claimed == 1
        assert casualty.completed == 0
        assert results.to_json() == serial.to_json()
        # The sweep had to outlive the lapsed lease, and the lapse is
        # visible in the queue counters.
        assert time.monotonic() - started >= LEASE
        counters = client.stats()["queue"]["counters"]
        assert counters["leases_requeued"] >= 1
        assert client.progress()["done"] == len(specs)

    def test_sigkilled_worker_subprocess_does_not_lose_the_sweep(
        self, server, client
    ):
        specs = sweep_specs(4)
        serial = Runner(cache=MissStreamCache()).run(specs)

        # Real process, real kill. --slow pins it inside a job so the
        # SIGKILL deterministically lands mid-lease.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        casualty = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--url", server.url, "--lease", str(LEASE), "--poll", "0.02",
                "--batch", "2", "--slow", "300",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        survivor = Worker(server.url, lease_seconds=LEASE, poll_interval=0.02)
        survivor_thread = threading.Thread(target=survivor.run, daemon=True)
        results = None
        try:
            # Wait until the subprocess holds at least one lease.
            deadline = time.monotonic() + 60
            batch = client.submit_jobs([spec.to_dict() for spec in specs])
            while client.progress(batch["sweep_id"])["running"] == 0:
                assert time.monotonic() < deadline, "worker never claimed a job"
                assert casualty.poll() is None, "worker died before the kill"
                time.sleep(0.02)
            casualty.send_signal(signal.SIGKILL)
            casualty.wait(timeout=30)

            survivor_thread.start()
            results = client.submit_sweep(
                specs, sweep_id=batch["sweep_id"], poll_interval=0.02, timeout=120
            )
        finally:
            if casualty.poll() is None:
                casualty.kill()
                casualty.wait(timeout=30)
            survivor.stop()
            if survivor_thread.is_alive():
                survivor_thread.join(timeout=10)

        assert results.to_json() == serial.to_json()
        progress = client.progress(batch["sweep_id"])
        assert progress["done"] == len(specs)
        assert progress["failed"] == 0
        assert client.stats()["queue"]["counters"]["leases_requeued"] >= 1


class TestSlowReplays:
    def test_heartbeats_cover_the_whole_claimed_batch(self, server, client):
        """Jobs waiting behind a slow replay must not lose their leases.

        One worker claims both jobs at once and takes longer than a
        lease to replay each; the heartbeat thread must keep the
        *waiting* job alive too, or its budget burns down while the
        worker is perfectly healthy.
        """
        specs = sweep_specs(2)
        worker = Worker(
            server.url, lease_seconds=0.6, poll_interval=0.02, batch=2,
            slow_seconds=0.8,
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            results = client.submit_sweep(specs, poll_interval=0.02, timeout=60)
        finally:
            worker.stop()
            thread.join(timeout=10)
        serial = Runner(cache=MissStreamCache()).run(specs)
        assert results.to_json() == serial.to_json()
        counters = client.stats()["queue"]["counters"]
        assert counters.get("leases_requeued", 0) == 0
        assert counters["claims"] == len(specs)  # nothing was reclaimed


class TestWarmResume:
    def test_crashed_sweep_resumed_by_submit_sweep_replays_nothing_stored(
        self, server, client
    ):
        specs = sweep_specs(4)
        sweep_id = "resumable"
        # First driver: the fleet lands half the sweep, then everything
        # stops (driver crash simulated by just... not polling).
        half = Worker(server.url, lease_seconds=LEASE, poll_interval=0.02,
                      batch=1, max_jobs=2)
        client.submit_jobs([spec.to_dict() for spec in specs], sweep_id=sweep_id)
        half.run()  # processes exactly 2 jobs, then returns
        assert client.progress(sweep_id)["done"] == 2

        before = client.stats()
        # Second driver resumes the same sweep with a fresh fleet.
        survivor = Worker(server.url, lease_seconds=LEASE, poll_interval=0.02)
        thread = threading.Thread(target=survivor.run, daemon=True)
        thread.start()
        try:
            results = client.submit_sweep(
                specs, sweep_id=sweep_id, poll_interval=0.02, timeout=60
            )
        finally:
            survivor.stop()
            thread.join(timeout=10)
        after = client.stats()

        serial = Runner(cache=MissStreamCache()).run(specs)
        assert results.to_json() == serial.to_json()
        # Zero re-replays of the stored half: the two done jobs were
        # reused verbatim (no new claims for them, no store misses) and
        # only the two unfinished specs were executed.
        assert (
            after["queue"]["counters"]["claims"]
            - before["queue"]["counters"]["claims"]
            == 2
        )
        assert after["store"]["result_entries"] == len(specs)
        assert client.progress(sweep_id)["done"] == len(specs)
