"""Unit tests for Markov Prefetching (MP)."""

from repro.prefetch.base import NO_EVICTION
from repro.prefetch.markov import MarkovPrefetcher

from conftest import drive_misses


class TestLearning:
    def test_successor_learned_and_predicted(self):
        mp = MarkovPrefetcher(rows=16, slots=2)
        drive_misses(mp, [10, 20])       # learns 10 -> 20
        prefetches = drive_misses(mp, [10])
        assert prefetches == [[20]]

    def test_two_successors_with_s2(self):
        mp = MarkovPrefetcher(rows=16, slots=2)
        drive_misses(mp, [10, 20, 10, 30])   # 10 -> {20, 30}
        prefetches = drive_misses(mp, [10])
        assert sorted(prefetches[0]) == [20, 30]

    def test_mru_successor_listed_first(self):
        mp = MarkovPrefetcher(rows=16, slots=2)
        drive_misses(mp, [10, 20, 10, 30])
        assert drive_misses(mp, [10])[0][0] == 30  # most recent first

    def test_slot_lru_eviction(self):
        mp = MarkovPrefetcher(rows=16, slots=2)
        drive_misses(mp, [10, 20, 10, 30, 10, 40])  # 20 evicted from slots
        prefetches = drive_misses(mp, [10])
        assert sorted(prefetches[0]) == [30, 40]

    def test_first_miss_to_page_predicts_nothing(self):
        mp = MarkovPrefetcher(rows=16)
        assert drive_misses(mp, [99]) == [[]]

    def test_consecutive_same_page_not_self_linked(self):
        mp = MarkovPrefetcher(rows=16)
        # Defensive: identical consecutive misses cannot occur through a
        # TLB, and must not create a self-loop if fed directly.
        drive_misses(mp, [10, 10])
        assert drive_misses(mp, [10]) == [[]]

    def test_alternation_retained_by_slots(self):
        """The paper's parser/vortex argument: with s=2 MP retains both
        alternating successors and predicts either continuation."""
        mp = MarkovPrefetcher(rows=64, slots=2)
        drive_misses(mp, [1, 2, 3, 1, 5, 3])  # 1 -> {2, 5}
        prefetches = drive_misses(mp, [1])
        assert sorted(prefetches[0]) == [2, 5]


class TestCapacity:
    def test_small_table_thrashes_on_large_footprint(self):
        """The paper's galgel observation: a footprint larger than the
        direct-mapped table prevents any row from surviving a sweep."""
        mp = MarkovPrefetcher(rows=8, slots=2)
        sweep = list(range(100, 132))  # 32 pages > 8 rows
        drive_misses(mp, sweep)
        second_sweep = drive_misses(mp, sweep)
        assert all(p == [] for p in second_sweep)

    def test_large_table_covers_footprint(self):
        mp = MarkovPrefetcher(rows=64, slots=2)
        sweep = list(range(100, 132))
        drive_misses(mp, sweep)
        second_sweep = drive_misses(mp, sweep)
        hits = sum(1 for i, p in enumerate(second_sweep[:-1]) if sweep[i + 1] in p)
        assert hits == len(sweep) - 1

    def test_flush(self):
        mp = MarkovPrefetcher(rows=16)
        drive_misses(mp, [10, 20])
        mp.flush()
        assert drive_misses(mp, [10]) == [[]]


class TestMetadata:
    def test_label(self):
        assert MarkovPrefetcher(rows=512, ways=4).label == "MP,512,4"
        assert MarkovPrefetcher(rows=256, ways=0).label == "MP,256,F"

    def test_hardware_description(self):
        desc = MarkovPrefetcher(slots=2).describe_hardware()
        assert desc.index_source == "Page #"
        assert desc.max_prefetches == "2"
