"""Tests for simulation configuration records and run statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import PAPER_DEFAULT, SimulationConfig, TLBConfig
from repro.sim.stats import PrefetchRunStats


class TestTLBConfig:
    def test_paper_default(self):
        assert PAPER_DEFAULT.tlb.entries == 128
        assert PAPER_DEFAULT.tlb.label == "128e-FA"
        assert PAPER_DEFAULT.buffer_entries == 16

    def test_build_creates_fresh_tlb(self):
        config = TLBConfig(entries=64, ways=2)
        tlb_a = config.build()
        tlb_b = config.build()
        assert tlb_a is not tlb_b
        assert tlb_a.entries == 64
        assert tlb_a.ways == 2

    def test_label_for_set_associative(self):
        assert TLBConfig(entries=256, ways=4).label == "256e-4w"


class TestSimulationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buffer_entries": 0},
            {"warmup_fraction": -0.1},
            {"warmup_fraction": 1.0},
            {"max_prefetches_per_miss": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)

    def test_with_tlb_copies(self):
        base = SimulationConfig(buffer_entries=32)
        derived = base.with_tlb(64, 2)
        assert derived.tlb.entries == 64
        assert derived.buffer_entries == 32
        assert base.tlb.entries == 128  # original untouched

    def test_with_buffer_copies(self):
        derived = SimulationConfig().with_buffer(64)
        assert derived.buffer_entries == 64
        assert derived.tlb.entries == 128


def _stats(**overrides) -> PrefetchRunStats:
    values = dict(
        workload="w",
        mechanism="DP",
        tlb_label="128e-FA",
        total_references=1000,
        tlb_misses=100,
        measured_misses=90,
        pb_hits=45,
        prefetches_issued=200,
        buffer_inserted=150,
        buffer_refreshed=30,
        buffer_evicted_unused=60,
        overhead_memory_ops=0,
        prefetch_fetch_ops=150,
    )
    values.update(overrides)
    return PrefetchRunStats(**values)


class TestPrefetchRunStats:
    def test_derived_metrics(self):
        stats = _stats()
        assert stats.prediction_accuracy == pytest.approx(0.5)
        assert stats.miss_rate == pytest.approx(0.1)
        assert stats.memory_ops_total == 150
        assert stats.memory_ops_per_miss == pytest.approx(1.5)
        assert stats.buffer_waste_fraction == pytest.approx(0.4)

    def test_zero_denominators(self):
        stats = _stats(
            total_references=0, tlb_misses=0, measured_misses=0, pb_hits=0,
            buffer_inserted=0, buffer_evicted_unused=0,
        )
        assert stats.prediction_accuracy == 0.0
        assert stats.miss_rate == 0.0
        assert stats.memory_ops_per_miss == 0.0
        assert stats.buffer_waste_fraction == 0.0

    def test_one_line_contains_key_fields(self):
        text = _stats().one_line()
        assert "w" in text
        assert "DP" in text
        assert "acc=" in text
        assert "0.500" in text
