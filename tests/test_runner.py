"""Tests for the unified execution API: RunSpec, Runner, ResultSet.

The contracts under test are the ones the rest of the library now
builds on:

- specs are frozen, hashable data with a *stable* content-addressed
  key (identical across processes);
- a Runner batch filters each (workload, scale, TLB, page size)
  exactly once, however many mechanism configurations replay over it;
- parallel execution is bit-identical to serial execution;
- ResultSets round-trip through JSON losslessly.
"""

import subprocess
import sys

import pytest

from repro.errors import ConfigurationError, UnknownPrefetcherError
from repro.run import MechanismSpec, MissStreamCache, ResultSet, Runner, RunSpec
from repro.sim.config import TLBConfig
from repro.sim.two_phase import evaluate
from repro.workloads.registry import get_trace

SCALE = 0.05


def spec_of(app="galgel", mechanism="DP", **kwargs):
    kwargs.setdefault("scale", SCALE)
    return RunSpec.of(app, mechanism, **kwargs)


class TestMechanismSpec:
    def test_keyword_order_is_canonicalized(self):
        assert MechanismSpec.of("DP", rows=128, slots=4) == MechanismSpec.of(
            "DP", slots=4, rows=128
        )

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(UnknownPrefetcherError):
            MechanismSpec.of("nope")

    def test_build_returns_fresh_instances(self):
        spec = MechanismSpec.of("DP", rows=64)
        assert spec.build() is not spec.build()
        assert spec.build().prefetches_issued == 0

    def test_label(self):
        assert MechanismSpec.of("RP").label == "RP"
        assert MechanismSpec.of("DP", rows=64).label == "DP(rows=64)"


class TestRunSpec:
    def test_specs_are_hashable_and_comparable(self):
        assert spec_of() == spec_of()
        assert len({spec_of(), spec_of(), spec_of(mechanism="RP")}) == 2

    def test_key_is_deterministic_within_process(self):
        assert spec_of().key() == spec_of().key()

    def test_key_differs_across_every_field(self):
        base = spec_of()
        variants = [
            spec_of(app="swim"),
            spec_of(mechanism="RP"),
            spec_of(scale=0.1),
            spec_of(tlb=TLBConfig(entries=64)),
            spec_of(buffer_entries=32),
            spec_of(warmup_fraction=0.1),
            spec_of(max_prefetches_per_miss=1),
            spec_of(page_size=8192),
            spec_of(rows=128),
        ]
        keys = {spec.key() for spec in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_key_is_stable_across_processes(self):
        """The key must not depend on PYTHONHASHSEED or object identity."""
        spec = spec_of(rows=256, slots=2)
        program = (
            "from repro.run import RunSpec;"
            f"print(RunSpec.of('galgel', 'DP', scale={SCALE}, rows=256, slots=2).key())"
        )
        child = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "7"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert child.returncode == 0, child.stderr
        assert child.stdout.strip() == spec.key()

    def test_validation_is_the_librarys_own(self):
        with pytest.raises(ConfigurationError):
            spec_of(buffer_entries=0)
        with pytest.raises(ConfigurationError):
            spec_of(page_size=2048)
        with pytest.raises(ConfigurationError):
            spec_of(page_size=5000)
        with pytest.raises(ConfigurationError):
            spec_of(scale=0)

    def test_stream_key_ignores_replay_only_fields(self):
        assert spec_of().stream_key() == spec_of(
            mechanism="RP", buffer_entries=64, max_prefetches_per_miss=2
        ).stream_key()
        assert spec_of().stream_key() != spec_of(tlb=TLBConfig(entries=64)).stream_key()

    def test_derive(self):
        derived = spec_of().derive(buffer_entries=32)
        assert derived.buffer_entries == 32
        assert derived.workload == "galgel"


class TestRunnerCache:
    def test_each_stream_filtered_exactly_once(self):
        cache = MissStreamCache()
        runner = Runner(cache=cache)
        specs = [
            spec_of(app, mechanism)
            for app in ("galgel", "swim")
            for mechanism in ("DP", "RP", "ASP", "MP")
        ]
        results = runner.run(specs)
        assert len(results) == 8
        assert cache.misses == 2  # one filter per workload
        assert cache.hits == 6

    def test_streams_shared_across_batches(self):
        cache = MissStreamCache()
        runner = Runner(cache=cache)
        runner.run([spec_of(mechanism="DP")])
        runner.run([spec_of(mechanism="RP")])
        assert cache.misses == 1
        assert cache.hits == 1

    def test_distinct_tlbs_distinct_streams(self):
        cache = MissStreamCache()
        runner = Runner(cache=cache)
        runner.run(
            [spec_of(), spec_of(tlb=TLBConfig(entries=64)), spec_of(page_size=8192)]
        )
        assert cache.misses == 3

    def test_lru_eviction_is_bounded(self):
        cache = MissStreamCache(maxsize=1)
        runner = Runner(cache=cache)
        runner.run([spec_of(), spec_of(tlb=TLBConfig(entries=64)), spec_of()])
        assert len(cache) == 1
        # Serial batches execute stream-group by stream-group, so the
        # two galgel specs share one filter even though this cache can
        # hold a single stream: g=2 groups miss, the duplicate hits.
        assert cache.misses == 2
        assert cache.hits == 1
        assert cache.evictions == 1

    def test_results_match_single_run_wrapper(self):
        stats = Runner(cache=MissStreamCache()).run([spec_of(rows=256)])[0]
        reference = evaluate(
            get_trace("galgel", SCALE), spec_of(rows=256).build_prefetcher()
        )
        assert stats.pb_hits == reference.pb_hits
        assert stats.prefetches_issued == reference.prefetches_issued
        assert stats.tlb_misses == reference.tlb_misses

    def test_ad_hoc_traces_keyed_by_content(self):
        cache = MissStreamCache()
        runner = Runner(cache=cache)
        first = runner.miss_stream(get_trace("galgel", SCALE))
        again = runner.miss_stream(get_trace("galgel", SCALE))
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_equal_content_traces_keep_their_own_names(self):
        """A content-cache hit must not relabel the caller's workload."""
        from repro.mem.trace import ReferenceTrace

        runner = Runner(cache=MissStreamCache())
        pages = list(range(40))
        before = ReferenceTrace([0] * 40, pages, [1] * 40, name="before")
        after = ReferenceTrace([0] * 40, pages, [1] * 40, name="after")
        assert runner.miss_stream(before).name == "before"
        assert runner.miss_stream(after).name == "after"

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError):
            Runner().run(["galgel"])


class TestParallelExecution:
    def test_workers_bit_identical_to_serial(self):
        specs = [
            spec_of(app, mechanism)
            for app in ("galgel", "swim", "eon")
            for mechanism in ("DP", "RP", "SP")
        ]
        serial = Runner(cache=MissStreamCache()).run(specs)
        parallel = Runner(workers=2, cache=MissStreamCache()).run(specs)
        assert serial.to_json() == parallel.to_json()

    def test_figure7_style_sweep_parallel(self):
        """The acceptance-criteria shape: a Figure-7 sweep through
        ``workers=4`` matches serial execution row for row, while each
        workload's TLB is filtered exactly once."""
        from repro.analysis.figures import figure7_configs

        apps = ("galgel", "eon")
        specs = [
            spec_of(app, config.mechanism, **config.factory_params())
            for app in apps
            for config in figure7_configs()
        ]
        serial_cache = MissStreamCache()
        serial = Runner(cache=serial_cache).run(specs)
        parallel = Runner(workers=4, cache=MissStreamCache()).run(specs)
        assert serial.to_json() == parallel.to_json()
        assert serial_cache.misses == len(apps)
        assert serial_cache.hits == len(specs) - len(apps)


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        specs = [
            spec_of(app, mechanism)
            for app in ("galgel", "swim")
            for mechanism in ("DP", "RP")
        ]
        return Runner(cache=MissStreamCache()).run(specs)

    def test_sequence_protocol(self, results):
        assert len(results) == 4
        assert results[0].workload == "galgel"
        assert isinstance(results[1:3], ResultSet)
        assert len(results[1:3]) == 2

    def test_filter_by_field_and_extra(self, results):
        assert len(results.filter(workload="galgel")) == 2
        assert len(results.filter(mechanism_name="DP")) == 2
        assert len(results.filter(workload="galgel", mechanism_name="DP")) == 1
        assert len(results.filter(lambda run: run.prediction_accuracy > 2)) == 0

    def test_filter_unknown_field_raises(self, results):
        with pytest.raises(KeyError):
            results.filter(flavour="salty")

    def test_group_by(self, results):
        by_workload = results.group_by("workload")
        assert set(by_workload) == {"galgel", "swim"}
        assert all(len(group) == 2 for group in by_workload.values())

    def test_pivot(self, results):
        table = results.pivot(columns="mechanism_name")
        assert set(table) == {"galgel", "swim"}
        assert set(table["galgel"]) == {"DP", "RP"}
        assert 0.0 <= table["galgel"]["DP"] <= 1.0

    def test_to_rows_includes_derived_and_extra(self, results):
        row = results.to_rows()[0]
        assert row["workload"] == "galgel"
        assert "prediction_accuracy" in row
        assert "spec_key" in row
        named = results.to_rows(["workload", "miss_rate"])[0]
        assert set(named) == {"workload", "miss_rate"}

    def test_json_round_trip(self, results, tmp_path):
        path = results.save(tmp_path / "results.json")
        loaded = ResultSet.load(path)
        assert loaded == results
        assert loaded.to_json() == results.to_json()

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            ResultSet.from_json('{"schema": "other/v9", "runs": []}')

    def test_concatenation(self, results):
        combined = results + results
        assert len(combined) == 8


class TestRunnerEdgeCases:
    def test_more_workers_than_specs(self):
        """A pool larger than the batch must not hang or drop rows."""
        specs = [spec_of(mechanism="DP"), spec_of(mechanism="RP")]
        serial = Runner(cache=MissStreamCache()).run(specs)
        oversubscribed = Runner(workers=8, cache=MissStreamCache()).run(specs)
        assert oversubscribed.to_json() == serial.to_json()

    def test_duplicate_specs_single_filter_pass(self):
        """Duplicates in one batch share one filter and all get rows."""
        cache = MissStreamCache()
        spec = spec_of(mechanism="DP")
        results = Runner(cache=cache).run([spec, spec, spec])
        assert len(results) == 3
        assert cache.misses == 1
        assert cache.hits == 2
        first, second, third = results
        assert first == second == third

    def test_duplicate_specs_parallel_matches_serial(self):
        spec = spec_of(mechanism="DP")
        other = spec_of(mechanism="RP")
        batch = [spec, other, spec, other]
        serial = Runner(cache=MissStreamCache()).run(batch)
        parallel = Runner(workers=4, cache=MissStreamCache()).run(batch)
        assert parallel.to_json() == serial.to_json()

    def test_empty_batch(self):
        results = Runner(cache=MissStreamCache()).run([])
        assert len(results) == 0
        assert results.to_rows() == []

    def test_load_rejects_older_schema_explicitly(self, tmp_path):
        """A v0-era file fails with a ValueError naming the schema."""
        import json

        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "repro.resultset/v0", "runs": []}))
        with pytest.raises(ValueError, match="repro.resultset/v0"):
            ResultSet.load(path)

    def test_load_rejects_missing_run_fields_explicitly(self, tmp_path):
        """Right schema, older row shape: ValueError, not KeyError."""
        import json

        good = Runner(cache=MissStreamCache()).run([spec_of()])
        payload = json.loads(good.to_json())
        for run in payload["runs"]:
            del run["prefetch_fetch_ops"]  # field an older version lacked
        path = tmp_path / "older_rows.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="run 0 does not match schema"):
            ResultSet.load(path)

    def test_load_rejects_runs_missing(self, tmp_path):
        import json

        path = tmp_path / "norun.json"
        path.write_text(json.dumps({"schema": "repro.resultset/v1"}))
        with pytest.raises(ValueError, match="no 'runs' list"):
            ResultSet.load(path)

    def test_load_rejects_non_object_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="expected a JSON object"):
            ResultSet.load(path)


class TestMissStreamCacheConcurrency:
    """Per-key (striped) build locks: one slow build must not serialize
    the whole cache, while same-key requests still build exactly once."""

    def test_hit_on_other_key_not_blocked_by_inflight_build(self):
        import threading
        import time as time_module

        cache = MissStreamCache()
        warm = object()
        cache.get_or_build(("b",), lambda: warm)
        build_started = threading.Event()
        release_build = threading.Event()

        def slow_build():
            build_started.set()
            assert release_build.wait(timeout=10)
            return object()

        builder = threading.Thread(
            target=cache.get_or_build, args=(("a",), slow_build)
        )
        builder.start()
        try:
            assert build_started.wait(timeout=10)
            # Key A's build is in flight and parked; a hit on key B
            # must come straight back (hits never take build locks).
            start = time_module.monotonic()
            got = cache.get_or_build(
                ("b",), lambda: pytest.fail("expected a cache hit")
            )
            elapsed = time_module.monotonic() - start
            assert got is warm
            assert elapsed < 2.0
        finally:
            release_build.set()
            builder.join(timeout=10)
        assert cache.hits == 1
        assert cache.misses == 2

    def test_same_key_concurrent_requests_build_once(self):
        import threading

        cache = MissStreamCache()
        builds = []
        all_started = threading.Event()
        value = object()

        def build():
            builds.append(1)
            assert all_started.wait(timeout=10)
            return value

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_build(("k",), build))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        all_started.set()
        for thread in threads:
            thread.join(timeout=10)
        assert builds == [1]
        assert results == [value] * 4
        assert (cache.hits, cache.misses) == (3, 1)


class TestMissStreamCacheStats:
    def test_stats_snapshot_tracks_hits_misses_evictions(self):
        cache = MissStreamCache(maxsize=1)
        runner = Runner(cache=cache)
        runner.run([spec_of(), spec_of(tlb=TLBConfig(entries=64)), spec_of()])
        # Stream-grouped serial execution: the duplicate galgel spec
        # hits within its group before the TLB-64 group evicts it.
        assert cache.stats() == {
            "entries": 1,
            "maxsize": 1,
            "hits": 1,
            "misses": 2,
            "evictions": 1,
        }

    def test_clear_zeroes_every_counter(self):
        cache = MissStreamCache(maxsize=1)
        Runner(cache=cache).run([spec_of(), spec_of(tlb=TLBConfig(entries=64))])
        cache.clear()
        assert cache.stats() == {
            "entries": 0,
            "maxsize": 1,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }


class TestRunSpecDictRoundTrip:
    def test_to_dict_from_dict_preserves_identity(self):
        spec = spec_of(
            mechanism="DP",
            tlb=TLBConfig(entries=64, ways=2),
            buffer_entries=32,
            warmup_fraction=0.1,
            page_size=8192,
            rows=128,
            slots=4,
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.key() == spec.key()

    def test_from_dict_rejects_unknown_fields(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="bogus"):
            RunSpec.from_dict({"workload": "galgel", "bogus": 1})
        with pytest.raises(ConfigurationError, match="workload"):
            RunSpec.from_dict({"mechanism": "DP"})
        with pytest.raises(ConfigurationError, match="object"):
            RunSpec.from_dict(["galgel"])

    def test_from_dict_applies_defaults(self):
        spec = RunSpec.from_dict({"workload": "galgel"})
        assert spec == RunSpec.of("galgel", "DP")


class TestResultSetMerge:
    def _rows(self, *mechanisms):
        return Runner(cache=MissStreamCache()).run(
            [spec_of(mechanism=m) for m in mechanisms]
        )

    def test_disjoint_union(self):
        merged = self._rows("DP").merge(self._rows("RP"))
        assert len(merged) == 2
        assert {run.extra["mechanism_name"] for run in merged} == {"DP", "RP"}

    def test_identical_duplicates_collapse(self):
        dp = self._rows("DP")
        partial = self._rows("DP", "RP")
        merged = partial.merge(dp)
        assert len(merged) == 2
        assert merged[:2].to_json() == partial.to_json()

    def test_conflicting_rows_for_same_spec_raise(self):
        from dataclasses import replace

        from repro.errors import ResultMergeError

        original = self._rows("DP")
        conflicting = ResultSet([replace(original[0], pb_hits=0)])
        with pytest.raises(ResultMergeError, match=original[0].extra["spec_key"]):
            original.merge(conflicting)

    def test_rows_without_spec_key_always_append(self):
        loose = ResultSet(
            [evaluate(get_trace("galgel", SCALE), spec_of().build_prefetcher())]
        )
        merged = loose.merge(loose)
        assert len(merged) == 2  # no key, no dedup — appended verbatim

    def test_merge_multiple_sets(self):
        merged = self._rows("DP").merge(self._rows("RP"), self._rows("DP", "ASP"))
        assert len(merged) == 3


class TestExperimentContextIntegration:
    def test_context_executes_through_runner(self):
        from repro.analysis.experiments import ExperimentContext

        cache = MissStreamCache()
        context = ExperimentContext(scale=SCALE, runner=Runner(cache=cache))
        figure = context.run_figure(["galgel"], None)
        assert "galgel" in figure
        assert cache.misses == 1  # one workload, one TLB shape, one filter
        assert cache.hits == len(next(iter(figure.values()))) - 1


class TestBatchEngineRouting:
    """Which specs the serial Runner routes through the batch engine.

    Contract (see Runner._run_serial): specs with engine "auto" or
    "batch" whose mechanism the batch engine supports are grouped by
    stream key; "auto" groups need >= 2 members to amortize a fused
    loop, "batch" forces it even for a singleton; checkpointing runs
    disable grouping entirely. Routing must never change results.
    """

    def _spy(self, monkeypatch):
        from repro.sim import batchpath

        calls = []
        real = batchpath.replay_batch

        def spying(miss_trace, requests):
            calls.append(len(requests))
            return real(miss_trace, requests)

        monkeypatch.setattr(batchpath, "replay_batch", spying)
        return calls

    def test_auto_group_routes_through_batch_engine(self, monkeypatch):
        calls = self._spy(monkeypatch)
        specs = [spec_of(mechanism=m) for m in ("DP", "RP", "ASP")]
        reference = Runner(cache=MissStreamCache()).run(
            [spec.derive(engine="reference") for spec in specs]
        )
        results = Runner(cache=MissStreamCache()).run(specs)
        assert calls == [3]  # one shared stream, one fused pass
        assert results.to_json() == reference.to_json()

    def test_auto_singleton_stays_per_spec(self, monkeypatch):
        calls = self._spy(monkeypatch)
        Runner(cache=MissStreamCache()).run([spec_of()])
        assert calls == []

    def test_engine_batch_forces_singleton_through_batch(self, monkeypatch):
        calls = self._spy(monkeypatch)
        spec = spec_of(engine="batch")
        reference = Runner(cache=MissStreamCache()).run_one(
            spec.derive(engine="reference")
        )
        (row,) = Runner(cache=MissStreamCache()).run([spec])
        assert calls == [1]
        from dataclasses import asdict

        assert asdict(row) == asdict(reference)

    def test_mixed_engines_split_within_a_group(self, monkeypatch):
        calls = self._spy(monkeypatch)
        specs = [
            spec_of(mechanism="DP"),
            spec_of(mechanism="RP", engine="reference"),
            spec_of(mechanism="ASP"),
        ]
        reference = Runner(cache=MissStreamCache()).run(
            [spec.derive(engine="reference") for spec in specs]
        )
        results = Runner(cache=MissStreamCache()).run(specs)
        assert calls == [2]  # the explicit reference spec stays per-spec
        assert results.to_json() == reference.to_json()

    def test_checkpoint_every_disables_batching(self, monkeypatch, tmp_path):
        from repro.store import ExperimentStore

        calls = self._spy(monkeypatch)
        specs = [spec_of(mechanism=m) for m in ("DP", "RP")]
        runner = Runner(
            cache=MissStreamCache(),
            checkpoint_every=1000,
            store=ExperimentStore(tmp_path / "store"),
        )
        reference = Runner(cache=MissStreamCache()).run(
            [spec.derive(engine="reference") for spec in specs]
        )
        results = runner.run(specs)
        assert calls == []
        assert results.to_json() == reference.to_json()

    def test_parallel_workers_batch_within_their_groups(self, monkeypatch):
        # Worker pools partition specs by stream group and each worker
        # replays its group via _run_group -> _run_serial, so the fused
        # pass fires inside the subprocess. The pool itself is opaque
        # to a monkeypatch, so spy on _run_group invoked in-process...
        from repro.run import runner as runner_module

        calls = self._spy(monkeypatch)
        group = tuple(spec_of("swim", m) for m in ("DP", "RP"))
        rows = runner_module._run_group(group)
        assert calls == [2]
        assert len(rows) == 2
        # ...and separately check the real pool stays bit-identical.
        specs = [
            spec_of(app, mechanism)
            for app in ("galgel", "swim")
            for mechanism in ("DP", "RP")
        ]
        serial = Runner(cache=MissStreamCache()).run(specs)
        parallel = Runner(workers=2, cache=MissStreamCache()).run(specs)
        assert parallel.to_json() == serial.to_json()

    def test_duplicate_specs_share_one_batch_pass(self, monkeypatch):
        calls = self._spy(monkeypatch)
        spec = spec_of()
        results = Runner(cache=MissStreamCache()).run([spec, spec, spec])
        assert calls == [3]
        rows = [r for r in results]
        from dataclasses import asdict

        assert asdict(rows[0]) == asdict(rows[1]) == asdict(rows[2])
