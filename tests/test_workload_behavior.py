"""Integration tests: the synthetic apps land in their paper-assigned
behaviour classes.

These run the real two-phase pipeline at reduced scale and check the
*orderings* the paper reports per application group (DESIGN.md §4).
Absolute accuracies differ from the paper; orderings must not.
"""

import pytest

from repro.prefetch.factory import create_prefetcher
from repro.sim.two_phase import filter_tlb, replay_prefetcher
from repro.workloads.registry import get_trace

SCALE = 0.2


@pytest.fixture(scope="module")
def accuracy():
    """app -> mechanism -> accuracy at the paper's default config."""
    cache: dict[str, dict[str, float]] = {}

    def compute(app: str) -> dict[str, float]:
        if app not in cache:
            miss_trace = filter_tlb(get_trace(app, SCALE))
            cache[app] = {
                mech: replay_prefetcher(
                    miss_trace, create_prefetcher(mech, rows=256)
                ).prediction_accuracy
                for mech in ("RP", "MP", "DP", "ASP")
            }
        return cache[app]

    return compute


class TestStridedRepeatedGroup:
    """galgel-class: everything but small-table MP is accurate."""

    def test_galgel_all_good_except_mp(self, accuracy):
        acc = accuracy("galgel")
        assert acc["RP"] > 0.9
        assert acc["DP"] > 0.9
        assert acc["ASP"] > 0.9
        assert acc["MP"] < 0.1  # footprint exceeds a 256-row table

    def test_galgel_mp_recovers_with_big_table(self):
        miss_trace = filter_tlb(get_trace("galgel", SCALE))
        big = replay_prefetcher(miss_trace, create_prefetcher("MP", rows=1024))
        assert big.prediction_accuracy > 0.8

    def test_facerec_mp_fits(self, accuracy):
        acc = accuracy("facerec")
        assert min(acc.values()) > 0.7  # all mechanisms good

    def test_adpcm_rp_asp_dp_good_mp_poor(self, accuracy):
        acc = accuracy("adpcm-enc")
        assert acc["RP"] > 0.8
        assert acc["ASP"] > 0.9
        assert acc["DP"] > 0.9
        assert acc["MP"] < 0.1


class TestHistoryGroup:
    """gcc/ammp/mcf-class: RP leads; stride schemes trail."""

    @pytest.mark.parametrize("app", ["gcc", "crafty", "ammp", "lucas", "sixtrack"])
    def test_rp_best_or_close(self, accuracy, app):
        acc = accuracy(app)
        assert acc["RP"] >= max(acc.values()) - 0.05, acc

    @pytest.mark.parametrize("app", ["vpr", "mcf", "twolf", "ammp", "lucas"])
    def test_table3_apps_have_rp_above_dp(self, accuracy, app):
        """The premise of Table 3: RP's accuracy beats DP's on these."""
        acc = accuracy(app)
        assert acc["RP"] > acc["DP"], acc

    def test_gcc_dp_comes_close(self, accuracy):
        acc = accuracy("gcc")
        assert acc["DP"] > acc["RP"] - 0.25

    def test_crafty_asp_fails(self, accuracy):
        assert accuracy("crafty")["ASP"] < 0.1


class TestAlternationGroup:
    """parser/vortex: MP beats even RP; ASP does not do well."""

    @pytest.mark.parametrize("app", ["parser", "vortex"])
    def test_mp_beats_rp(self, accuracy, app):
        acc = accuracy(app)
        assert acc["MP"] > acc["RP"], acc
        assert acc["ASP"] < 0.1


class TestOneTouchGroup:
    """gzip-class: ASP and DP capture first-time references."""

    @pytest.mark.parametrize(
        "app", ["gzip", "perlbmk", "equake", "epic", "anagram", "yacr2"]
    )
    def test_asp_dp_good_history_zero(self, accuracy, app):
        acc = accuracy(app)
        assert acc["ASP"] > 0.5, acc
        assert acc["DP"] > 0.5, acc
        assert acc["RP"] < 0.1, acc
        assert acc["MP"] < 0.1, acc


class TestDistanceGroup:
    """swim-class: DP does much better than all others."""

    @pytest.mark.parametrize(
        "app", ["wupwise", "swim", "mgrid", "applu", "mpeg-dec", "mpegply", "perl4"]
    )
    def test_dp_dominates(self, accuracy, app):
        acc = accuracy(app)
        others = max(acc["RP"], acc["MP"], acc["ASP"])
        assert acc["DP"] > 0.6, acc
        assert acc["DP"] > others + 0.3, acc


class TestDPOnlyGroup:
    """gsm/jpeg/ks/bc/msvc: only DP makes noticeable predictions."""

    @pytest.mark.parametrize(
        "app", ["gsm-enc", "gsm-dec", "jpeg-enc", "jpeg-dec", "msvc", "ks", "bc"]
    )
    def test_dp_noticeable_others_near_zero(self, accuracy, app):
        acc = accuracy(app)
        assert 0.08 < acc["DP"] < 0.35, acc
        assert acc["RP"] < 0.08, acc
        assert acc["MP"] < 0.08, acc
        assert acc["ASP"] < 0.08, acc


class TestNobodyGroup:
    """eon/fma3d/g721/pgp-dec: no mechanism predicts anything."""

    @pytest.mark.parametrize(
        "app", ["eon", "fma3d", "g721-enc", "g721-dec", "pgp-dec"]
    )
    def test_all_mechanisms_near_zero(self, accuracy, app):
        acc = accuracy(app)
        assert max(acc.values()) < 0.1, acc


class TestMissRates:
    """The paper's top-8 selection and its ordering must reproduce."""

    def test_high_miss_apps_lead(self):
        rates = {
            app: filter_tlb(get_trace(app, SCALE)).miss_rate
            for app in (
                "galgel", "adpcm-enc", "mcf", "apsi", "vpr",
                "lucas", "twolf", "ammp", "gzip", "swim", "eon",
            )
        }
        assert rates["galgel"] == pytest.approx(0.228, abs=0.02)
        assert rates["adpcm-enc"] == pytest.approx(0.192, abs=0.02)
        assert rates["mcf"] == pytest.approx(0.090, abs=0.015)
        # Every background app sits below the top-8 band.
        band_floor = min(
            rates[a] for a in
            ("galgel", "adpcm-enc", "mcf", "apsi", "vpr", "lucas", "twolf", "ammp")
        )
        assert rates["gzip"] < band_floor
        assert rates["swim"] < band_floor
        assert rates["eon"] < band_floor
