"""Unit tests for Distance Prefetching — the paper's contribution."""

from repro.core.distance import DistancePrefetcher
from repro.prefetch.base import NO_EVICTION

from conftest import drive_misses


class TestPaperExamples:
    def test_reference_string_1_2_4_5_7_8(self):
        """The paper's running example: distances alternate 1, 2; DP
        needs only two table rows where MP would need one per page."""
        dp = DistancePrefetcher(rows=16, slots=2)
        prefetches = drive_misses(dp, [1, 2, 4, 5, 7, 8, 10, 11, 13])
        # After one full cycle DP predicts every subsequent reference.
        # Miss at 7 (distance 2, learned "2 -> 1"): predicts 8.
        assert 8 in prefetches[4]
        assert 10 in prefetches[5]   # at 8, distance 1 -> predict +2
        assert 11 in prefetches[6]
        assert 13 in prefetches[7]
        # Two rows suffice: only distances 1 and 2 were ever allocated.
        assert len(dp.table) == 2

    def test_sequential_scan_needs_one_row(self):
        dp = DistancePrefetcher(rows=16, slots=2)
        prefetches = drive_misses(dp, [100, 101, 102, 103, 104])
        # "1 follows 1" learned after the third miss.
        assert prefetches[3] == [104]
        assert prefetches[4] == [105]
        assert len(dp.table) == 1

    def test_constant_stride_any_value(self):
        dp = DistancePrefetcher(rows=16, slots=2)
        prefetches = drive_misses(dp, [0, 7, 14, 21, 28])
        assert prefetches[3] == [28]
        assert prefetches[4] == [35]

    def test_first_two_misses_predict_nothing(self):
        dp = DistancePrefetcher(rows=16)
        prefetches = drive_misses(dp, [10, 20])
        assert prefetches == [[], []]


class TestDistanceHistory:
    def test_stride_change_pattern_learned(self):
        """Behaviour class (d): the stride changes, but the changes
        themselves repeat — exactly what the distance table captures."""
        dp = DistancePrefetcher(rows=16, slots=2)
        # Distance cycle 3, 3, 10 repeating (e.g. row-end jumps).
        pages = [0, 3, 6, 16, 19, 22, 32, 35, 38, 48]
        prefetches = drive_misses(dp, pages)
        # Second cycle onward, the 10-jump is predicted from "3 -> 10"
        # history (slot holds both 3 and 10 successors of distance 3).
        assert 32 in prefetches[5]
        assert 48 in prefetches[8]

    def test_negative_distances(self):
        dp = DistancePrefetcher(rows=16, slots=2)
        prefetches = drive_misses(dp, [100, 90, 80, 70])
        assert prefetches[3] == [60]

    def test_negative_page_targets_suppressed(self):
        dp = DistancePrefetcher(rows=16, slots=2)
        prefetches = drive_misses(dp, [30, 20, 10, 0])
        # Prediction would be -10: filtered out.
        assert prefetches[3] == []

    def test_slots_hold_two_most_recent_successors(self):
        dp = DistancePrefetcher(rows=16, slots=2)
        # distance 1 followed by 2, then 1 followed by 5, then 1 by 9.
        drive_misses(dp, [0, 1, 3, 4, 9, 10, 19])
        row = dp.table.peek(1)
        assert row.values() == [9, 5]  # 2 evicted (LRU), MRU first

    def test_table_conflict_behavior(self):
        dp = DistancePrefetcher(rows=4, slots=2)  # direct mapped, 4 sets
        # Distances 1 and 5 collide (1 % 4 == 5 % 4).
        drive_misses(dp, [0, 1, 2])        # allocates distance 1
        assert dp.table.peek(1) is not None
        drive_misses(dp, [100, 105, 110])  # allocates distance 5 (+100 jump)
        assert dp.table.peek(1) is None    # evicted by conflict


class TestBookkeeping:
    def test_prediction_read_before_update(self):
        """Fig 6 order: the table is consulted for the current distance
        before the previous distance's slots are updated."""
        dp = DistancePrefetcher(rows=16, slots=2)
        # Distances: 2 (from 10->12), then 2 again (12->14). At the
        # second distance-2 miss, "2 -> 2" has NOT yet been recorded
        # (the update stores 2 as successor of the previous distance
        # at the same step), so nothing is predicted yet.
        prefetches = drive_misses(dp, [10, 12, 14])
        assert prefetches[2] == []
        # Next miss at 16: now "2 -> 2" is in the table.
        assert drive_misses(dp, [16])[0] == [18]

    def test_flush_resets_state(self):
        dp = DistancePrefetcher(rows=16)
        drive_misses(dp, [0, 1, 2, 3])
        dp.flush()
        assert len(dp.table) == 0
        assert drive_misses(dp, [50, 51, 52]) [0] == []

    def test_statistics(self):
        dp = DistancePrefetcher(rows=16)
        drive_misses(dp, [0, 1, 2, 3, 4])
        assert dp.prefetches_issued == 2  # misses 4 and 5 predicted
        assert dp.overhead_ops_total == 0

    def test_label_and_hardware(self):
        dp = DistancePrefetcher(rows=64, ways=0)
        assert dp.label == "DP,64,F"
        desc = dp.describe_hardware()
        assert desc.index_source == "Distance"
        assert desc.memory_ops_per_miss == 0
