"""Tests for the workload recipe factories."""

import numpy as np
import pytest

from repro.mem.trace import ReferenceTrace
from repro.sim.config import TLBConfig
from repro.sim.two_phase import filter_tlb
from repro.workloads import recipes


def _trace(builder, scale=0.2, seed=11) -> ReferenceTrace:
    pattern = builder(scale)
    rng = np.random.default_rng(seed)
    pcs, pages, counts = pattern.emit(rng)
    return ReferenceTrace(pcs, pages, counts)


class TestStridedRepeated:
    def test_miss_rate_tracks_refs_per_page(self):
        builder = recipes.strided_repeated(footprint=300, refs_per_page=4.0, sweeps=50)
        miss_trace = filter_tlb(_trace(builder), TLBConfig(entries=128))
        assert miss_trace.miss_rate == pytest.approx(0.25, abs=0.02)

    def test_hot_dilution_reduces_rate(self):
        plain = recipes.strided_repeated(footprint=300, refs_per_page=4.0, sweeps=50)
        diluted = recipes.strided_repeated(
            footprint=300, refs_per_page=4.0, sweeps=50, hot=(24, 36.0)
        )
        rate_plain = filter_tlb(_trace(plain)).miss_rate
        rate_diluted = filter_tlb(_trace(diluted)).miss_rate
        assert rate_diluted == pytest.approx(rate_plain / 10, rel=0.25)

    def test_burst_factor_in_hot_spec(self):
        builder = recipes.strided_repeated(
            footprint=100, refs_per_page=2.0, sweeps=10, hot=(24, 30.0, 4)
        )
        trace = _trace(builder)
        # Hot runs inserted after every 4th inner run.
        hot_runs = int((trace.pages >= 30_000_000).sum())
        inner_runs = trace.num_runs - hot_runs
        assert hot_runs == inner_runs // 4


class TestOneTouch:
    def test_pages_never_revisited(self):
        builder = recipes.one_touch_strided(
            segment_pages=200, strides=[1, 2], refs_per_page=2.0,
            repeats=3, noise=0.0,
        )
        trace = _trace(builder, scale=1.0)
        pages = trace.pages.tolist()
        assert len(set(pages)) == len(pages)

    def test_noise_adds_separate_region(self):
        builder = recipes.one_touch_strided(
            segment_pages=400, strides=[1], refs_per_page=2.0,
            repeats=2, noise=0.2,
        )
        trace = _trace(builder, scale=1.0)
        noise_runs = int((trace.pages >= 40_000_000).sum())
        assert noise_runs > 0


class TestInterleavedStreams:
    def test_asp_side_stream_has_own_pc(self):
        builder = recipes.interleaved_stream_app(
            num_streams=3, stream_gap=100_000, length=500,
            refs_per_page=2.0, asp_side_pages=100, asp_side_sweeps=2,
            noise=0.0,
        )
        trace = _trace(builder)
        pcs = set(trace.pcs.tolist())
        assert 0x5000 in pcs  # the side stream's private PC block


class TestLowMiss:
    def test_miss_rate_is_tiny(self):
        builder = recipes.low_miss_app(
            hot_pages=48, laps=500, cold_pages=200, cold_steps=50
        )
        miss_trace = filter_tlb(_trace(builder, scale=1.0))
        assert miss_trace.miss_rate < 0.002


class TestDpOnly:
    def test_cycle_share_bounds_dp_headroom(self):
        builder = recipes.dp_only_app(
            random_footprint=500, random_steps=4000,
            cycle=[1, 4], cycle_steps=1000, refs_per_page=2.0,
        )
        miss_trace = filter_tlb(_trace(builder, scale=1.0))
        # Roughly a fifth of the misses are the predictable bursts.
        assert 3500 < miss_trace.num_misses < 6000


class TestMixed:
    def test_mixed_app_interleaves_builders(self):
        builder = recipes.mixed_app(
            [
                recipes.strided_repeated(footprint=50, refs_per_page=2.0, sweeps=4),
                recipes.random_touch(footprint=50, steps=100, refs_per_page=2.0),
            ],
            burst_runs=8,
        )
        trace = _trace(builder, scale=1.0)
        # Both sub-patterns contribute runs.
        assert trace.num_runs == 300
