"""Unit tests for the execution-cycle timing model (Table 3 engine)."""

import numpy as np
import pytest

from repro.cpu.costs import TimingParameters
from repro.cpu.timing import CoreTimeline
from repro.errors import ConfigurationError
from repro.mem.trace import NO_EVICTION, MissTrace
from repro.prefetch.factory import create_prefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.sim.cycle import CycleSimConfig, normalized_cycles, simulate_cycles


def _miss_trace(pages, ref_index, total, evicted=None):
    n = len(pages)
    return MissTrace(
        pcs=np.zeros(n, dtype=np.int64),
        pages=np.asarray(pages, dtype=np.int64),
        evicted=np.asarray(
            evicted if evicted is not None else [NO_EVICTION] * n, dtype=np.int64
        ),
        ref_index=np.asarray(ref_index, dtype=np.int64),
        total_references=total,
        name="t",
    )


#: Simple timing: 1 cycle/ref, full stall exposure, no contention.
SIMPLE = TimingParameters(
    issue_width=1,
    instructions_per_reference=1.0,
    stall_exposure=1.0,
    walk_contention=0.0,
)


class TestTimingParameters:
    def test_cycles_per_reference(self):
        assert TimingParameters().cycles_per_reference == pytest.approx(3.0)
        assert SIMPLE.cycles_per_reference == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tlb_miss_penalty": -1},
            {"prefetch_op_cost": -5},
            {"issue_width": 0},
            {"instructions_per_reference": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TimingParameters(**kwargs)


class TestCoreTimeline:
    def test_base_advance(self):
        timeline = CoreTimeline(SIMPLE)
        assert timeline.advance_to_reference(10) == pytest.approx(10.0)

    def test_stalls_accumulate(self):
        timeline = CoreTimeline(SIMPLE)
        timeline.advance_to_reference(10)
        timeline.stall(100)
        timeline.stall(-5)  # ignored
        assert timeline.now == pytest.approx(110.0)
        assert timeline.finish(20) == pytest.approx(120.0)


class TestBaseline:
    def test_no_prefetch_cycles_are_base_plus_penalties(self):
        miss_trace = _miss_trace([1, 2], ref_index=[0, 500], total=1000)
        config = CycleSimConfig(timing=SIMPLE)
        stats = simulate_cycles(miss_trace, NullPrefetcher(), config)
        assert stats.total_cycles == pytest.approx(1000 + 2 * 100)
        assert stats.demand_stall_cycles == pytest.approx(200)
        assert stats.in_flight_stall_cycles == 0
        assert stats.memory_ops == 0

    def test_exposure_scales_demand_stalls(self):
        timing = TimingParameters(
            issue_width=1, instructions_per_reference=1.0,
            stall_exposure=0.5, walk_contention=0.0,
        )
        miss_trace = _miss_trace([1], ref_index=[0], total=100)
        stats = simulate_cycles(miss_trace, NullPrefetcher(), CycleSimConfig(timing=timing))
        assert stats.demand_stall_cycles == pytest.approx(50)


class TestPrefetchTiming:
    def test_timely_prefetch_saves_full_penalty(self):
        # Misses far apart: page 2's prefetch (issued at the page-1
        # miss) arrives long before it is needed.
        miss_trace = _miss_trace([1, 2], ref_index=[0, 500], total=1000)
        config = CycleSimConfig(timing=SIMPLE)
        stats = simulate_cycles(miss_trace, SequentialPrefetcher(), config)
        baseline = simulate_cycles(miss_trace, NullPrefetcher(), config)
        assert stats.pb_hits == 1
        # One demand stall (the first miss) remains.
        assert stats.total_cycles == pytest.approx(baseline.total_cycles - 100)

    def test_in_flight_hit_stalls_until_arrival(self):
        # Second miss comes 20 cycles after the first; the prefetch
        # needs 50 (one op) after the first miss's stall completes.
        miss_trace = _miss_trace([1, 2], ref_index=[0, 20], total=1000)
        config = CycleSimConfig(timing=SIMPLE)
        stats = simulate_cycles(miss_trace, SequentialPrefetcher(), config)
        assert stats.pb_hits == 1
        # First miss at t=0 stalls 100; prefetch issued at t=100,
        # arrives t=150. Second miss at base 20 + 100 stall = 120:
        # waits 30 cycles (capped at the 100-cycle penalty).
        assert stats.in_flight_stall_cycles == pytest.approx(30)

    def test_in_flight_wait_capped_at_penalty(self):
        timing = TimingParameters(
            issue_width=1, instructions_per_reference=1.0,
            stall_exposure=1.0, walk_contention=0.0,
            prefetch_op_cost=1000,  # absurdly slow channel
        )
        miss_trace = _miss_trace([1, 2], ref_index=[0, 20], total=2000)
        stats = simulate_cycles(
            miss_trace, SequentialPrefetcher(), CycleSimConfig(timing=timing)
        )
        assert stats.in_flight_stall_cycles <= 100

    def test_queue_serializes_prefetch_ops(self):
        miss_trace = _miss_trace([1, 10], ref_index=[0, 2], total=100)
        config = CycleSimConfig(timing=SIMPLE)
        stats = simulate_cycles(
            miss_trace, SequentialPrefetcher(degree=2), config
        )
        # 2 fetches per miss, second miss's fetches queue behind the
        # first's: memory ops counted for all four.
        assert stats.memory_ops == 4


class TestRecencyCosts:
    def test_overhead_ops_execute_and_count(self):
        rp = create_prefetcher("RP")
        miss_trace = _miss_trace(
            [1, 2, 3], ref_index=[0, 400, 800], total=1200,
            evicted=[10, 11, 12],
        )
        config = CycleSimConfig(timing=SIMPLE)
        stats = simulate_cycles(miss_trace, rp, config)
        # Every miss pushes an evicted entry (2 ops); later misses also
        # unlink nothing (pages never on stack) -> 2 ops each.
        assert stats.memory_ops >= 6

    def test_skip_rule_suppresses_rp_fetches_when_busy(self):
        # Misses arrive every 10 cycles; pointer ops alone take 200.
        pages = list(range(1, 30))
        evicted = list(range(101, 130))
        ref_index = [i * 10 for i in range(29)]
        miss_trace = _miss_trace(pages, ref_index=ref_index, total=400, evicted=evicted)
        config = CycleSimConfig(timing=SIMPLE)
        rp_stats = simulate_cycles(miss_trace, create_prefetcher("RP"), config)
        # The stack has no useful neighbours here anyway; the important
        # observable is that the run completes with bounded queue and
        # no prefetch fetch ops beyond the pointer writes.
        assert rp_stats.pb_hits == 0

    def test_walk_contention_charged_only_with_overhead_traffic(self):
        timing = TimingParameters(
            issue_width=1, instructions_per_reference=1.0,
            stall_exposure=1.0, walk_contention=1.0,
        )
        config = CycleSimConfig(timing=timing)
        # Re-missing previously evicted pages forces RP's full 4-op
        # pointer maintenance per miss; back-to-back misses keep the
        # write queue busy so the contention charge applies.
        pages = [1, 2, 3] + [11, 12, 13] * 5
        evicted = [11, 12, 13] + list(range(21, 36))
        ref_index = [i * 5 for i in range(len(pages))]
        miss_trace = _miss_trace(
            pages, ref_index=ref_index, total=200, evicted=evicted
        )
        rp_stats = simulate_cycles(miss_trace, create_prefetcher("RP"), config)
        dp_stats = simulate_cycles(miss_trace, create_prefetcher("DP", rows=16), config)
        baseline = simulate_cycles(miss_trace, NullPrefetcher(), config)
        # RP (with overhead writes) pays contention; DP never does.
        assert rp_stats.total_cycles > baseline.total_cycles
        assert dp_stats.demand_stall_cycles <= baseline.demand_stall_cycles


class TestNormalization:
    def test_normalized_cycles(self):
        miss_trace = _miss_trace([1, 2], ref_index=[0, 500], total=1000)
        config = CycleSimConfig(timing=SIMPLE)
        baseline = simulate_cycles(miss_trace, NullPrefetcher(), config)
        sp = simulate_cycles(miss_trace, SequentialPrefetcher(), config)
        assert normalized_cycles(sp, baseline) == pytest.approx(
            sp.total_cycles / baseline.total_cycles
        )
        assert normalized_cycles(sp, baseline) < 1.0
