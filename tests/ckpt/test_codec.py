"""The ``repro.ckpt/v1`` binary codec: exactness and loud corruption.

Round-trips must be exact (including int-vs-float identity and
arbitrary-precision integers — DP-2 packs keys past 64 bits), equal
payloads must produce equal bytes (content addressing), and every way
a blob can be damaged — bad magic, wrong schema, truncation at any
byte, flipped bits, trailing garbage, a lying body length — must raise
:class:`~repro.errors.CkptError`, never return wrong data.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt.codec import CKPT_SCHEMA, blob_digest, decode_blob, encode_blob
from repro.errors import CkptError, ReproError

#: Any value the snapshot layer may feed the codec.
codec_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**80), max_value=2**80)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


class TestRoundTrip:
    @given(payload=codec_values)
    @settings(max_examples=200, deadline=None)
    def test_any_payload_round_trips_exactly(self, payload):
        kind, decoded = decode_blob(encode_blob("fuzz", payload))
        assert kind == "fuzz"
        assert decoded == payload
        # == is too loose across the int/float boundary (1 == 1.0):
        # the tag must survive too.
        assert _typed(decoded) == _typed(payload)

    @given(payload=codec_values)
    @settings(max_examples=100, deadline=None)
    def test_equal_payloads_encode_identically(self, payload):
        first = encode_blob("fuzz", payload)
        second = encode_blob("fuzz", payload)
        assert first == second
        assert blob_digest(first) == blob_digest(second)

    def test_huge_integers_survive(self):
        payload = [2**200, -(2**200), 0, -1]
        assert decode_blob(encode_blob("k", payload))[1] == payload

    def test_tuples_encode_as_lists(self):
        assert decode_blob(encode_blob("k", (1, 2)))[1] == [1, 2]

    def test_unencodable_type_rejected(self):
        with pytest.raises(CkptError, match="cannot encode"):
            encode_blob("k", {"bad": object()})

    def test_ckpt_error_is_a_repro_error(self):
        assert issubclass(CkptError, ReproError)


class TestCorruption:
    def _blob(self):
        return encode_blob("mech.dp", {"rows": 64, "sets": [[1, [2, 3]]]})

    def test_bad_magic(self):
        with pytest.raises(CkptError, match="bad magic"):
            decode_blob(b"NOPE" + self._blob()[4:])

    def test_wrong_schema(self):
        # A blob whose embedded schema string differs.
        import repro.ckpt.codec as codec

        original = codec.CKPT_SCHEMA
        try:
            codec.CKPT_SCHEMA = "repro.ckpt/v999"
            alien = encode_blob("k", None)
        finally:
            codec.CKPT_SCHEMA = original
        with pytest.raises(CkptError, match="unsupported checkpoint schema"):
            decode_blob(alien)
        assert CKPT_SCHEMA == original

    @pytest.mark.parametrize("keep", [0, 3, 4, 10, -1])
    def test_truncation_at_any_prefix(self, keep):
        blob = self._blob()
        with pytest.raises(CkptError):
            decode_blob(blob[: keep if keep >= 0 else len(blob) - 1])

    def test_every_single_byte_flip_is_detected(self):
        blob = self._blob()
        for index in range(len(blob)):
            mutated = bytearray(blob)
            mutated[index] ^= 0xFF
            with pytest.raises(CkptError):
                decode_blob(bytes(mutated))

    def test_trailing_garbage(self):
        with pytest.raises(CkptError, match="trailing bytes"):
            decode_blob(self._blob() + b"x")

    def test_kind_mismatch(self):
        with pytest.raises(CkptError, match="kind mismatch"):
            decode_blob(self._blob(), expect_kind="mech.rp")

    def test_empty_blob(self):
        with pytest.raises(CkptError):
            decode_blob(b"")


class TestDigest:
    def test_digest_is_stable_and_short(self):
        blob = encode_blob("k", [1, 2, 3])
        assert blob_digest(blob) == blob_digest(blob)
        assert len(blob_digest(blob)) == 24
        assert blob_digest(blob) != blob_digest(encode_blob("k", [1, 2, 4]))


def _typed(value):
    """Value annotated with its type tree, so 1 != 1.0 and [] != ()."""
    if isinstance(value, list):
        return [_typed(item) for item in value]
    if isinstance(value, dict):
        return {key: _typed(item) for key, item in value.items()}
    return (type(value).__name__, value)
