"""Snapshot round-trip fuzzing: every StateSnapshot, arbitrary state.

The satellite contract: for every mechanism family, ``snapshot ->
bytes -> restore`` into a fresh instance must reproduce *identical
behaviour on a continuation stream* — same prefetch decisions, same
counters, same final digest — for hypothesis-generated miss histories,
not just the curated traces. Plus the strict-restore failure modes:
configuration mismatches and cross-family restores raise
:class:`~repro.errors.CkptError` instead of silently corrupting state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import (
    SNAPSHOT_KINDS,
    StateSnapshot,
    restore_buffer,
    restore_prefetcher,
    restore_tlb,
    snapshot_buffer,
    snapshot_prefetcher,
    snapshot_tlb,
)
from repro.errors import CkptError
from repro.prefetch.factory import create_prefetcher
from repro.tlb.prefetch_buffer import PrefetchBuffer
from repro.tlb.tlb import TLB

#: (name, params) for every snapshot-able family; tables kept tiny so
#: short fuzzed histories still cause evictions and LRU churn.
FAMILIES = [
    ("none", {}),
    ("SP", {}),
    ("SP-adaptive", {}),
    ("ASP", {"rows": 8, "ways": 2}),
    ("MP", {"rows": 8}),
    ("DP", {"rows": 8}),
    ("DP-PC", {"rows": 8, "ways": 2}),
    ("DP-2", {"rows": 8, "ways": 2}),
    ("RP", {}),
    ("RP", {"variant_three": 1}),
]

FAMILY_IDS = [
    f"{name}{''.join(f'-{k}{v}' for k, v in params.items())}"
    for name, params in FAMILIES
]

#: One miss event: (pc, page, evicted, pb_hit). Small page range keeps
#: revisits (and therefore table hits and RP re-links) frequent.
miss_events = st.tuples(
    st.integers(0, 6),
    st.integers(0, 30),
    st.integers(-1, 30),
    st.booleans(),
)

histories = st.lists(miss_events, max_size=60)


def _drive(prefetcher, events):
    """Feed events through on_miss, returning the decision trace."""
    return [
        prefetcher.on_miss(pc, page, evicted, pb_hit)
        for pc, page, evicted, pb_hit in events
    ]


@pytest.mark.parametrize(("name", "params"), FAMILIES, ids=FAMILY_IDS)
@given(history=histories, continuation=histories)
@settings(max_examples=40, deadline=None)
def test_restore_reproduces_behavior_on_continuation(
    name, params, history, continuation
):
    trained = create_prefetcher(name, **params)
    _drive(trained, history)

    blob = snapshot_prefetcher(trained).to_bytes()
    restored_into = create_prefetcher(name, **params)
    restore_prefetcher(StateSnapshot.from_bytes(blob), restored_into)

    # Identical state now...
    assert (
        snapshot_prefetcher(restored_into).digest()
        == snapshot_prefetcher(trained).digest()
    )
    # ...and identical behaviour from here on.
    assert _drive(restored_into, continuation) == _drive(trained, continuation)
    assert (
        snapshot_prefetcher(restored_into).digest()
        == snapshot_prefetcher(trained).digest()
    )
    assert restored_into.prefetches_issued == trained.prefetches_issued
    assert restored_into.overhead_ops_total == trained.overhead_ops_total
    assert restored_into.last_overhead_ops == trained.last_overhead_ops


@pytest.mark.parametrize(("name", "params"), FAMILIES, ids=FAMILY_IDS)
@given(history=histories)
@settings(max_examples=25, deadline=None)
def test_snapshot_bytes_round_trip_exactly(name, params, history):
    prefetcher = create_prefetcher(name, **params)
    _drive(prefetcher, history)
    snap = snapshot_prefetcher(prefetcher)
    recovered = StateSnapshot.from_bytes(snap.to_bytes())
    assert type(recovered) is type(snap)
    assert recovered == snap
    assert recovered.digest() == snap.digest()


@given(
    pages=st.lists(st.integers(0, 200), max_size=80),
    continuation=st.lists(st.integers(0, 200), max_size=40),
    entries=st.sampled_from([4, 8, 64]),
    ways=st.sampled_from([0, 2, 4]),
)
@settings(max_examples=40, deadline=None)
def test_tlb_snapshot_round_trip(pages, continuation, entries, ways):
    tlb = TLB(entries=entries, ways=ways)
    for page in pages:
        tlb.access(page)
    twin = TLB(entries=entries, ways=ways)
    restore_tlb(snapshot_tlb(tlb), twin)
    assert twin.resident_pages() == tlb.resident_pages()
    assert (twin.hits, twin.misses) == (tlb.hits, tlb.misses)
    for page in continuation:
        assert twin.access(page) == tlb.access(page)
    assert twin.resident_pages() == tlb.resident_pages()


@given(
    ops=st.lists(st.tuples(st.booleans(), st.integers(0, 40)), max_size=80),
    capacity=st.sampled_from([1, 4, 16]),
)
@settings(max_examples=40, deadline=None)
def test_buffer_snapshot_round_trip(ops, capacity):
    buffer = PrefetchBuffer(capacity)
    for is_insert, page in ops:
        if is_insert:
            buffer.insert(page)
        else:
            buffer.lookup_remove(page)
    twin = PrefetchBuffer(capacity)
    restore_buffer(snapshot_buffer(buffer), twin)
    assert twin.resident_pages() == buffer.resident_pages()
    for field in ("hits", "lookups", "inserted", "refreshed", "evicted_unused"):
        assert getattr(twin, field) == getattr(buffer, field)


class TestStrictRestore:
    def _trained(self, name, **params):
        prefetcher = create_prefetcher(name, **params)
        for page in (3, 7, 12, 3, 9, 7):
            prefetcher.on_miss(0, page, -1, False)
        return prefetcher

    def test_configuration_mismatch_rejected(self):
        snap = snapshot_prefetcher(self._trained("DP", rows=8))
        with pytest.raises(CkptError, match="mismatch"):
            restore_prefetcher(snap, create_prefetcher("DP", rows=16))

    def test_cross_family_restore_rejected(self):
        snap = snapshot_prefetcher(self._trained("DP", rows=8))
        with pytest.raises(CkptError):
            restore_prefetcher(snap, create_prefetcher("MP", rows=8))

    def test_tlb_shape_mismatch_rejected(self):
        tlb = TLB(entries=8, ways=2)
        tlb.access(5)
        with pytest.raises(CkptError, match="mismatch"):
            restore_tlb(snapshot_tlb(tlb), TLB(entries=16, ways=2))

    def test_buffer_capacity_mismatch_rejected(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(9)
        with pytest.raises(CkptError, match="mismatch"):
            restore_buffer(snapshot_buffer(buffer), PrefetchBuffer(8))

    def test_wrong_kind_bytes_rejected_by_subclass(self):
        from repro.ckpt import TLBSnapshot

        blob = snapshot_prefetcher(self._trained("DP", rows=8)).to_bytes()
        with pytest.raises(CkptError, match="kind"):
            TLBSnapshot.from_bytes(blob)


def test_every_registered_kind_is_reachable():
    """The registry holds exactly the snapshot kinds the suite fuzzes."""
    assert set(SNAPSHOT_KINDS) == {
        "table", "tlb", "buffer", "session",
        "mech.none", "mech.sp", "mech.asp_seq", "mech.asp", "mech.mp",
        "mech.dp", "mech.dp_pc", "mech.dp2", "mech.rp",
    }
