"""ReplaySession unit contracts (bit-identity itself is proven by
``tests/differential/test_warm_start.py``): progress accounting,
advance edge cases, warm-instance baselines, and strict resume
validation.
"""

import pytest

from repro.ckpt import ReplaySession, SessionSnapshot
from repro.errors import CkptError
from repro.prefetch.factory import create_prefetcher
from repro.run import MissStreamCache, Runner, RunSpec
from repro.sim.two_phase import replay_prefetcher

SCALE = 0.02


@pytest.fixture(scope="module")
def stream():
    return Runner(cache=MissStreamCache()).miss_stream("galgel", scale=SCALE)


def test_progress_accounting(stream):
    session = ReplaySession(stream, create_prefetcher("DP", rows=64))
    assert (session.offset, session.remaining) == (0, session.total)
    assert not session.finished
    assert session.advance(10) == 10
    assert (session.offset, session.remaining) == (10, session.total - 10)
    assert session.advance(None) == session.total - 10
    assert session.finished
    assert session.advance(5) == 0  # advancing a finished session is a no-op
    assert session.advance(None) == 0


def test_zero_advance_is_allowed(stream):
    session = ReplaySession(stream, create_prefetcher("DP", rows=64))
    assert session.advance(0) == 0


def test_negative_advance_rejected(stream):
    session = ReplaySession(stream, create_prefetcher("DP", rows=64))
    with pytest.raises(CkptError, match="advance count"):
        session.advance(-1)


def test_finished_session_matches_reference(stream):
    session = ReplaySession(stream, create_prefetcher("DP", rows=64))
    session.advance(None)
    assert session.stats() == replay_prefetcher(
        stream, create_prefetcher("DP", rows=64)
    )


def test_warm_instance_reports_only_this_stream(stream):
    """Counter baselines: a pre-trained mechanism's earlier activity
    must not leak into this stream's statistics — a warm session
    reports exactly what a warm reference replay reports."""
    session_p = create_prefetcher("DP", rows=64)
    reference_p = create_prefetcher("DP", rows=64)
    replay_prefetcher(stream, session_p)
    replay_prefetcher(stream, reference_p)
    issued_before = session_p.prefetches_issued
    assert issued_before > 0
    warm_reference = replay_prefetcher(stream, reference_p)
    session = ReplaySession(stream, session_p)
    session.advance(None)
    assert session.stats() == warm_reference
    # The cumulative instance counter kept growing; the report did not.
    assert session_p.prefetches_issued > session.stats().prefetches_issued


def test_spec_like_knobs_are_honored(stream):
    spec = RunSpec.of("galgel", "DP", scale=SCALE, buffer_entries=4,
                      max_prefetches_per_miss=1)
    session = ReplaySession(
        stream,
        spec.build_prefetcher(),
        buffer_entries=spec.buffer_entries,
        max_prefetches_per_miss=spec.max_prefetches_per_miss,
    )
    session.advance(None)
    assert session.buffer.capacity == 4
    one_shot = Runner(cache=MissStreamCache()).run([spec])[0]
    assert session.stats().pb_hits == one_shot.pb_hits


class TestResumeValidation:
    def test_resume_rejects_non_session_snapshot(self, stream):
        from repro.ckpt import snapshot_prefetcher

        snap = snapshot_prefetcher(create_prefetcher("DP", rows=64))
        with pytest.raises(CkptError, match="cannot resume"):
            ReplaySession.resume(snap, stream, create_prefetcher("DP", rows=64))

    def test_resume_rejects_offset_beyond_stream(self, stream):
        session = ReplaySession(stream, create_prefetcher("DP", rows=64))
        session.advance(5)
        snap = session.snapshot()
        truncated = SessionSnapshot(
            offset=session.total + 1,
            pb_hits_measured=snap.pb_hits_measured,
            issued_before=snap.issued_before,
            overhead_before=snap.overhead_before,
            max_prefetches_per_miss=snap.max_prefetches_per_miss,
            mechanism=snap.mechanism,
            buffer=snap.buffer,
        )
        with pytest.raises(CkptError, match="offset"):
            ReplaySession.resume(
                truncated, stream, create_prefetcher("DP", rows=64)
            )

    def test_resume_carries_buffer_capacity_from_snapshot(self, stream):
        session = ReplaySession(
            stream, create_prefetcher("DP", rows=64), buffer_entries=4
        )
        session.advance(50)
        resumed = ReplaySession.resume(
            session.snapshot(), stream, create_prefetcher("DP", rows=64)
        )
        assert resumed.buffer.capacity == 4
