"""CheckpointManager over a real store: addressing, GC, bookmarks.

Snapshots are content-addressed (equal state stores once), loads
verify bytes against their address, continuations survive process
boundaries and vanish gracefully when GC claims their blob, and
pinning holds a blob against an eviction sweep.
"""

import pytest

from repro.ckpt import CheckpointManager, ReplaySession
from repro.errors import CkptError
from repro.prefetch.factory import create_prefetcher
from repro.run import MissStreamCache, Runner, RunSpec
from repro.store import ExperimentStore

SCALE = 0.02


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "store")


@pytest.fixture
def manager(store):
    return CheckpointManager(store)


def _snapshot(pages=(3, 7, 12, 3, 9)):
    from repro.ckpt import snapshot_prefetcher

    prefetcher = create_prefetcher("DP", rows=8)
    for page in pages:
        prefetcher.on_miss(0, page, -1, False)
    return snapshot_prefetcher(prefetcher)


class TestBlobs:
    def test_save_load_round_trip(self, manager):
        snap = _snapshot()
        digest = manager.save(snap)
        assert digest == snap.digest()
        assert manager.load(digest) == snap

    def test_identical_state_stores_once(self, manager, store):
        assert manager.save(_snapshot()) == manager.save(_snapshot())
        assert len(store.ckpt_keys()) == 1

    def test_missing_digest_is_none(self, manager):
        assert manager.load("0" * 24) is None

    def test_misfiled_blob_fails_verification(self, manager, store):
        blob = _snapshot().to_bytes()
        store.put_ckpt("f" * 24, blob)  # filed under the wrong address
        with pytest.raises(CkptError, match="content verification"):
            manager.load("f" * 24)

    def test_pin_survives_full_gc(self, manager, store):
        digest = manager.save(_snapshot())
        with manager.pinned(digest):
            store.gc(max_bytes=0)
            assert manager.load(digest) is not None
        store.gc(max_bytes=0)
        assert manager.load(digest) is None


class TestContinuations:
    def test_round_trip_and_clear(self, manager):
        snap = _snapshot()
        record = manager.save_continuation("spec-a", 1234, snap)
        assert record["stream_offset"] == 1234
        loaded_record, loaded_snap = manager.load_continuation("spec-a")
        assert loaded_record == record
        assert loaded_snap == snap
        assert manager.clear_continuation("spec-a") is True
        assert manager.load_continuation("spec-a") is None
        assert manager.clear_continuation("spec-a") is False

    def test_gc_lost_blob_means_no_continuation(self, manager, store):
        manager.save_continuation("spec-a", 10, _snapshot())
        record, _ = manager.load_continuation("spec-a")
        store.delete_ckpt(record["state_digest"])
        assert manager.load_continuation("spec-a") is None

    def test_survives_a_fresh_manager(self, store, manager):
        manager.save_continuation("spec-a", 7, _snapshot())
        reopened = CheckpointManager(ExperimentStore(store.root))
        record, snap = reopened.load_continuation("spec-a")
        assert record["stream_offset"] == 7
        assert snap == _snapshot()


class TestSessions:
    def test_record_round_trip(self, manager):
        manager.save_session("s1", {"spec_key": "k", "stream_offset": 5})
        assert manager.load_session("s1") == {
            "spec_key": "k", "stream_offset": 5,
        }
        assert manager.session_ids() == ["s1"]
        assert manager.delete_session("s1") is True
        assert manager.load_session("s1") is None
        assert manager.session_ids() == []

    def test_session_ids_exclude_other_record_kinds(self, manager):
        manager.save_session("s1", {"a": 1})
        manager.save_session("s2", {"a": 2})
        manager.save_continuation("spec-a", 0, _snapshot())
        assert manager.session_ids() == ["s1", "s2"]


def test_full_suspend_resume_through_the_manager(manager, tmp_path):
    """The whole loop: advance, checkpoint, forget, restore, finish —
    byte-identical to an uninterrupted session."""
    runner = Runner(cache=MissStreamCache())
    spec = RunSpec.of("galgel", "DP", scale=SCALE)
    stream = runner.miss_stream_for(spec)

    one_shot = ReplaySession(stream, spec.build_prefetcher())
    one_shot.advance(None)

    session = ReplaySession(stream, spec.build_prefetcher())
    session.advance(session.total // 3)
    digest = manager.save(session.snapshot())
    del session  # the "process" dies here

    restored = ReplaySession.resume(
        manager.load(digest), stream, spec.build_prefetcher()
    )
    restored.advance(None)
    assert restored.stats() == one_shot.stats()
