"""Unit tests for Arbitrary Stride Prefetching (Chen & Baer RPT)."""

from repro.prefetch.base import NO_EVICTION
from repro.prefetch.stride import (
    ArbitraryStridePrefetcher,
    StrideEntry,
    StrideState,
)

from conftest import drive_misses


class TestStateMachine:
    """Walk the Chen & Baer transitions explicitly."""

    def test_lock_after_two_equal_strides(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        # Misses at constant stride 5 from one PC.
        prefetches = drive_misses(asp, [100, 105, 110, 115], pcs=[7] * 4)
        # Allocation; stride 5 learned (transient); steady -> prefetch.
        assert prefetches[0] == []
        assert prefetches[1] == []
        assert prefetches[2] == [115]
        assert prefetches[3] == [120]

    def test_initial_with_zero_stride_goes_steady_but_silent(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        # Same page twice: stride 0 matches the allocated stride of 0,
        # so the entry goes steady, but a zero stride never prefetches.
        prefetches = drive_misses(asp, [100, 100, 100], pcs=[7] * 3)
        assert prefetches == [[], [], []]

    def test_stride_change_in_steady_goes_initial_keeping_stride(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        drive_misses(asp, [100, 105, 110], pcs=[7] * 3)  # steady, stride 5
        entry = asp.table.peek(7)
        assert entry.state is StrideState.STEADY
        # A spurious jump: steady -> initial, stride kept (the safeguard).
        asp.on_miss(7, 200, NO_EVICTION, False)
        assert entry.state is StrideState.INITIAL
        assert entry.stride == 5

    def test_recovers_lock_after_spurious_change(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        pages = [100, 105, 110, 300, 305, 310]
        prefetches = drive_misses(asp, pages, pcs=[7] * 6)
        # After the jump to 300 the stride (5) reappears: 300->305 is
        # "unchanged" vs the kept stride, so the entry re-locks.
        assert prefetches[4] == [310]
        assert prefetches[5] == [315]

    def test_transient_mismatch_goes_no_prediction(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        drive_misses(asp, [100, 105], pcs=[7] * 2)  # transient, stride 5
        asp.on_miss(7, 120, NO_EVICTION, False)  # stride 15 != 5
        assert asp.table.peek(7).state is StrideState.NO_PREDICTION

    def test_no_prediction_recovers_via_transient(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        drive_misses(asp, [100, 105, 120], pcs=[7] * 3)  # no-pred, stride 15
        prefetches = drive_misses(asp, [135, 150, 165], pcs=[7] * 3)
        # 135: stride 15 unchanged -> transient; 150: -> steady + prefetch.
        assert prefetches[0] == []
        assert prefetches[1] == [165]
        assert prefetches[2] == [180]


class TestIndexing:
    def test_independent_streams_per_pc(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        # Two interleaved PCs with different strides both lock.
        pages = [100, 500, 101, 510, 102, 520, 103, 530]
        pcs = [1, 2, 1, 2, 1, 2, 1, 2]
        prefetches = drive_misses(asp, pages, pcs=pcs)
        assert prefetches[4] == [103]   # pc 1, stride 1
        assert prefetches[5] == [530]   # pc 2, stride 10
        assert prefetches[6] == [104]
        assert prefetches[7] == [540]

    def test_shared_pc_with_alternating_strides_never_locks(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        # One PC touching two interleaved streams: strides alternate
        # (+400, -399, +400, ...) and never repeat back-to-back.
        pages = [100, 500, 101, 501, 102, 502, 103, 503]
        prefetches = drive_misses(asp, pages, pcs=[1] * 8)
        assert all(p == [] for p in prefetches)

    def test_negative_stride(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        prefetches = drive_misses(asp, [100, 90, 80, 70], pcs=[7] * 4)
        assert prefetches[2] == [70]
        assert prefetches[3] == [60]

    def test_negative_target_suppressed(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        prefetches = drive_misses(asp, [20, 10, 0], pcs=[7] * 3)
        # Steady at stride -10 but 0 - 10 < 0: no prefetch issued.
        assert prefetches[2] == []

    def test_row_conflict_evicts_lru_pc(self):
        asp = ArbitraryStridePrefetcher(rows=4)  # direct mapped, 4 sets
        drive_misses(asp, [100, 105, 110], pcs=[1] * 3)  # locked
        asp.on_miss(5, 999, NO_EVICTION, False)  # pc 5 maps to set 1 too
        assert asp.table.peek(1) is None
        assert isinstance(asp.table.peek(5), StrideEntry)

    def test_flush_clears_table(self):
        asp = ArbitraryStridePrefetcher(rows=16)
        drive_misses(asp, [100, 105, 110], pcs=[7] * 3)
        asp.flush()
        assert len(asp.table) == 0


class TestMetadata:
    def test_label(self):
        assert ArbitraryStridePrefetcher(rows=512).label == "ASP,512"

    def test_hardware_description(self):
        desc = ArbitraryStridePrefetcher().describe_hardware()
        assert desc.index_source == "PC"
        assert desc.max_prefetches == "1"
        assert desc.memory_ops_per_miss == 0
