"""Unit tests for the MMU pipeline (paper Figure 1 semantics)."""

from repro.prefetch.null import NullPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.sim.config import SimulationConfig
from repro.sim.functional import build_mmu
from repro.tlb.mmu import MMU, TranslationOutcome
from repro.tlb.prefetch_buffer import PrefetchBuffer
from repro.tlb.tlb import TLB


def _mmu(prefetcher=None, entries=4, buffer_entries=4, clamp=0) -> MMU:
    return MMU(
        TLB(entries=entries),
        PrefetchBuffer(buffer_entries),
        prefetcher or NullPrefetcher(),
        max_prefetches_per_miss=clamp,
    )


class TestPipeline:
    def test_tlb_hit_short_circuits(self):
        mmu = _mmu()
        mmu.translate(0, 1)
        outcome = mmu.translate(0, 1)
        assert outcome is TranslationOutcome.TLB_HIT
        assert mmu.tlb_misses == 1

    def test_demand_miss_fills_tlb(self):
        mmu = _mmu()
        outcome = mmu.translate(0, 1)
        assert outcome is TranslationOutcome.DEMAND_MISS
        assert 1 in mmu.tlb

    def test_buffer_hit_moves_entry_to_tlb(self):
        mmu = _mmu(SequentialPrefetcher())
        mmu.translate(0, 10)          # prefetches 11
        assert 11 in mmu.buffer
        outcome = mmu.translate(0, 11)
        assert outcome is TranslationOutcome.BUFFER_HIT
        assert 11 in mmu.tlb
        assert 11 not in mmu.buffer   # moved over, not copied
        assert mmu.buffer_hits == 1

    def test_buffer_hit_counts_as_tlb_miss(self):
        """Prediction accuracy is per TLB miss: buffer hits are misses
        that were covered, not hits."""
        mmu = _mmu(SequentialPrefetcher())
        mmu.translate(0, 10)
        mmu.translate(0, 11)
        assert mmu.tlb_misses == 2
        assert mmu.prediction_accuracy == 0.5

    def test_prefetch_clamp(self):
        mmu = _mmu(SequentialPrefetcher(degree=4), clamp=2)
        mmu.translate(0, 10)
        assert len(mmu.buffer) == 2

    def test_translate_run_counts_tail_as_hits(self):
        mmu = _mmu()
        mmu.translate_run(0, 1, count=5)
        assert mmu.references == 5
        assert mmu.tlb_misses == 1
        assert mmu.tlb.hits == 4

    def test_context_switch_flush(self):
        from repro.prefetch.markov import MarkovPrefetcher

        mp = MarkovPrefetcher(rows=16)
        mmu = _mmu(mp)
        mmu.translate(0, 1)
        mmu.translate(0, 2)
        mmu.flush_for_context_switch()
        assert len(mmu.tlb) == 0
        assert len(mmu.buffer) == 0
        assert len(mp.table) == 0

    def test_context_switch_can_keep_prediction_state(self):
        from repro.prefetch.markov import MarkovPrefetcher

        mp = MarkovPrefetcher(rows=16)
        mmu = _mmu(mp)
        mmu.translate(0, 1)
        mmu.translate(0, 2)
        mmu.flush_for_context_switch(flush_prediction_state=False)
        assert len(mp.table) > 0


class TestBuildMMU:
    def test_build_from_config(self):
        config = SimulationConfig(buffer_entries=32).with_tlb(64, 2)
        mmu = build_mmu(NullPrefetcher(), config)
        assert mmu.tlb.entries == 64
        assert mmu.tlb.ways == 2
        assert mmu.buffer.capacity == 32
