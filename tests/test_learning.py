"""Tests for the learning-curve (warm-up) analysis."""

import pytest

from repro.analysis.learning import (
    TimelinePoint,
    accuracy_timeline,
    final_accuracy,
    misses_to_reach,
    render_timeline,
)
from repro.errors import ConfigurationError
from repro.prefetch.factory import create_prefetcher
from repro.sim.config import TLBConfig
from repro.sim.two_phase import filter_tlb
from repro.workloads.registry import get_trace

from conftest import make_trace


class TestTimelineMechanics:
    def test_window_partitioning(self):
        trace = make_trace(list(range(100)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        points = accuracy_timeline(
            miss_trace, create_prefetcher("DP", rows=16), window=30
        )
        assert [p.misses for p in points] == [30, 30, 30, 10]
        assert points[0].start_miss == 0
        assert points[-1].start_miss == 90

    def test_window_validation(self):
        trace = make_trace([1, 2, 3])
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        with pytest.raises(ConfigurationError):
            accuracy_timeline(miss_trace, create_prefetcher("DP"), window=0)

    def test_total_hits_match_plain_replay(self):
        from repro.sim.two_phase import replay_prefetcher

        trace = make_trace(list(range(200)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        points = accuracy_timeline(
            miss_trace, create_prefetcher("DP", rows=16), window=64
        )
        replay = replay_prefetcher(miss_trace, create_prefetcher("DP", rows=16))
        assert sum(p.hits for p in points) == replay.pb_hits


class TestWarmupBehavior:
    def test_dp_warms_within_first_window(self):
        """DP predicts a sequential scan from the third miss onward."""
        trace = make_trace(list(range(500)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        points = accuracy_timeline(
            miss_trace, create_prefetcher("DP", rows=16), window=50
        )
        assert points[0].accuracy > 0.9

    def test_rp_needs_a_full_sweep(self):
        """RP cannot predict until evicted entries recirculate: its
        first sweep over galgel scores ~0 while DP is already hot —
        the paper's 'take a while to learn a pattern' argument."""
        miss_trace = filter_tlb(get_trace("galgel", 0.05))
        sweep_misses = 700  # galgel's footprint
        dp_points = accuracy_timeline(
            miss_trace, create_prefetcher("DP", rows=256), window=sweep_misses
        )
        rp_points = accuracy_timeline(
            miss_trace, create_prefetcher("RP"), window=sweep_misses
        )
        assert dp_points[0].accuracy > 0.9
        assert rp_points[0].accuracy < 0.1
        assert rp_points[1].accuracy > 0.9  # second sweep: history built

    def test_misses_to_reach(self):
        miss_trace = filter_tlb(get_trace("galgel", 0.05))
        dp_warm = misses_to_reach(
            accuracy_timeline(
                miss_trace, create_prefetcher("DP", rows=256), window=100
            )
        )
        rp_warm = misses_to_reach(
            accuracy_timeline(miss_trace, create_prefetcher("RP"), window=100)
        )
        assert dp_warm is not None and rp_warm is not None
        assert dp_warm < rp_warm

    def test_misses_to_reach_none_when_never_working(self):
        trace = make_trace(list(range(100)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        points = accuracy_timeline(miss_trace, create_prefetcher("none"))
        assert misses_to_reach(points) is None

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            misses_to_reach([TimelinePoint(0, 10, 5)], fraction=0.0)


class TestRendering:
    def test_render_timeline(self):
        points = [TimelinePoint(0, 100, 50), TimelinePoint(100, 100, 90)]
        text = render_timeline(points, label="DP on demo")
        assert "DP on demo" in text
        assert "0.500" in text
        assert "0.900" in text


class TestFinalAccuracy:
    def test_uses_tail_windows(self):
        points = [TimelinePoint(0, 100, 0)] * 6 + [TimelinePoint(600, 100, 100)] * 2
        assert final_accuracy(points) == pytest.approx(1.0)

    def test_empty(self):
        assert final_accuracy([]) == 0.0
