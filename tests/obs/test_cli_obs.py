"""The ``repro-tlb trace`` and ``repro-tlb top`` verbs."""

import json
import threading

import pytest

from repro.cli import main
from repro.obs import COLLECTOR
from repro.obs.console import render_top, sparkline
from repro.service import make_server


@pytest.fixture
def server(tmp_path):
    server = make_server(tmp_path / "store", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def span_file(tmp_path):
    spans = [
        {
            "name": "sweep",
            "trace_id": "t1",
            "span_id": "a",
            "parent_id": None,
            "start": 1.0,
            "duration": 0.5,
            "status": "ok",
            "attrs": {},
        },
        {
            "name": "worker.job",
            "trace_id": "t1",
            "span_id": "b",
            "parent_id": "a",
            "start": 1.1,
            "duration": 0.2,
            "status": "ok",
            "attrs": {"worker": "w1"},
        },
    ]
    path = tmp_path / "spans.json"
    path.write_text(json.dumps({"spans": spans}))
    return path


class TestTraceVerb:
    def test_file_renders_flame(self, span_file, capsys):
        assert main(["trace", "--file", str(span_file)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "  worker.job" in out  # indented under its parent

    def test_file_json_output_round_trips(self, span_file, capsys):
        assert main(["trace", "--file", str(span_file), "--json"]) == 0
        spans = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in spans] == ["sweep", "worker.job"]

    def test_file_trace_id_filter(self, span_file, capsys):
        assert main(
            ["trace", "--file", str(span_file), "--trace-id", "missing"]
        ) == 1
        assert "no spans" in capsys.readouterr().out

    def test_url_lists_and_renders(self, server, capsys):
        COLLECTOR.clear()
        COLLECTOR.ingest(
            [
                {
                    "name": "http.request",
                    "trace_id": "cli01",
                    "span_id": "s1",
                    "parent_id": None,
                    "start": 0.0,
                    "duration": 0.1,
                    "status": "ok",
                    "attrs": {},
                }
            ]
        )
        assert main(["trace", "--url", server.url]) == 0
        assert "cli01" in capsys.readouterr().out
        assert main(["trace", "--url", server.url, "--trace-id", "cli01"]) == 0
        assert "http.request" in capsys.readouterr().out


class TestTopVerb:
    def test_once_prints_one_frame(self, server, capsys):
        assert main(["top", "--url", server.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro-tlb top" in out
        assert "queue" in out
        assert "hit rates" in out
        assert "\x1b[2J" not in out  # --once must not clear the screen

    def test_render_top_computes_rps_from_deltas(self):
        current = {"metrics": {"http_requests": 150}}
        previous = {"metrics": {"http_requests": 100}}
        frame = render_top(current, previous=previous, interval=5.0)
        assert "rps 10.0/s" in frame

    def test_render_top_without_history_shows_placeholder(self):
        assert "rps -" in render_top({"metrics": {"http_requests": 3}})


class TestSparklines:
    def test_empty_series_renders_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_sits_at_the_lowest_level(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_ramp_uses_the_full_range(self):
        spark = sparkline([0.0, 1.0, 2.0, 3.0])
        assert spark[0] == "▁"
        assert spark[-1] == "█"
        assert len(spark) == 4

    def test_window_keeps_only_the_trailing_samples(self):
        assert len(sparkline(list(range(100)), width=30)) == 30

    def test_render_top_shows_trend_lines(self):
        frame = render_top(
            {"metrics": {"http_requests": 3}},
            history={"p99_ms": [1.0, 2.0, 9.0], "queued": [0.0, 0.0, 0.0]},
        )
        assert "trends" in frame
        assert "p99_ms" in frame
        assert "█" in frame  # the 9.0 spike tops out the ramp

    def test_render_top_omits_trends_without_history(self):
        assert "trends" not in render_top({"metrics": {}})
