"""Benchmark history: JSONL round-trip and the regression gate.

The bench observatory is a CI gate, so these tests pin the failure
modes that matter: a clean window passes, a synthetic 20% throughput
drop regresses (and ``repro-tlb bench compare`` exits nonzero on it),
ceiling budgets bind on the latest value alone, corrupt or foreign
history lines raise instead of being skipped, and metrics absent from
either side are reported as skipped, never regressed.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ObsError
from repro.obs import (
    BENCH_SCHEMA,
    append_history,
    compare_history,
    format_compare,
    load_history,
)


def record(specs_per_second=100.0, **extra):
    base = {
        "specs_per_second": specs_per_second,
        "batch_specs_per_second": 200.0,
        "stream_entries_per_second": 5000.0,
        "warm_start_speedup": 3.0,
        "store_cold_overhead_fraction": 0.03,
        "obs_overhead_fraction": 0.02,
    }
    base.update(extra)
    return base


def write_history(path, throughputs, **extra):
    for i, value in enumerate(throughputs):
        append_history(
            path,
            record(specs_per_second=value, **extra),
            git_sha=f"sha{i}",
            timestamp=1700000000.0 + i,
        )


class TestAppendAndLoad:
    def test_round_trip_preserves_provenance(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        line = append_history(
            path, record(), git_sha="abc123", timestamp=1700000000.0
        )
        assert line["schema"] == BENCH_SCHEMA
        (loaded,) = load_history(path)
        assert loaded["git_sha"] == "abc123"
        assert loaded["timestamp"] == 1700000000.0
        assert loaded["record"]["specs_per_second"] == 100.0

    def test_appends_accumulate_oldest_first(self, tmp_path):
        path = tmp_path / "h.jsonl"
        write_history(path, [100.0, 110.0, 120.0])
        history = load_history(path)
        assert [h["record"]["specs_per_second"] for h in history] == [
            100.0, 110.0, 120.0,
        ]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError, match="no benchmark history"):
            load_history(tmp_path / "absent.jsonl")

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(path, record())
        path.open("a").write("{not json\n")
        with pytest.raises(ObsError, match=":2:"):
            load_history(path)

    def test_foreign_schema_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            json.dumps({"schema": "other/v1", "record": {}}) + "\n"
        )
        with pytest.raises(ObsError, match="other/v1"):
            load_history(path)

    def test_line_without_record_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}) + "\n")
        with pytest.raises(ObsError, match="no 'record'"):
            load_history(path)

    def test_blank_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(path, record())
        with path.open("a") as handle:
            handle.write("\n")
        assert len(load_history(path)) == 1


class TestCompare:
    def test_clean_window_passes(self, tmp_path):
        path = tmp_path / "h.jsonl"
        write_history(path, [100.0, 102.0, 98.0, 101.0])
        report = compare_history(load_history(path), baseline_window=3)
        assert report["regressed"] is False
        assert report["baseline_runs"] == 3
        assert report["latest_git_sha"] == "sha3"
        verdicts = {m["metric"]: m["verdict"] for m in report["metrics"]}
        assert verdicts["specs_per_second"] == "ok"

    def test_twenty_percent_drop_regresses(self, tmp_path):
        """The acceptance scenario: a 20% specs_per_second drop must
        trip the 15% tolerance."""
        path = tmp_path / "h.jsonl"
        write_history(path, [100.0, 100.0, 100.0, 80.0])
        report = compare_history(load_history(path), baseline_window=3)
        assert report["regressed"] is True
        (entry,) = [
            m for m in report["metrics"] if m["metric"] == "specs_per_second"
        ]
        assert entry["verdict"] == "regressed"
        assert entry["baseline"] == pytest.approx(100.0)
        assert "REGRESSED" in format_compare(report)

    def test_ceiling_binds_on_latest_alone(self, tmp_path):
        path = tmp_path / "h.jsonl"
        # Baseline also over budget: irrelevant — ceilings ignore it.
        write_history(path, [100.0])
        append_history(path, record(obs_overhead_fraction=0.08))
        report = compare_history(load_history(path), baseline_window=1)
        (entry,) = [
            m for m in report["metrics"]
            if m["metric"] == "obs_overhead_fraction"
        ]
        assert entry["verdict"] == "regressed"
        assert entry["baseline"] is None
        assert report["regressed"] is True

    def test_missing_metric_is_skipped_not_regressed(self, tmp_path):
        path = tmp_path / "h.jsonl"
        thin = {"specs_per_second": 100.0}
        append_history(path, thin)
        append_history(path, thin)
        report = compare_history(load_history(path), baseline_window=1)
        verdicts = {m["metric"]: m["verdict"] for m in report["metrics"]}
        assert verdicts["warm_start_speedup"] == "skipped"
        assert verdicts["obs_overhead_fraction"] == "skipped"
        assert report["regressed"] is False

    def test_single_record_skips_window_kinds(self, tmp_path):
        # First-ever run: no baseline yet, only ceilings can verdict.
        path = tmp_path / "h.jsonl"
        write_history(path, [100.0])
        report = compare_history(load_history(path), baseline_window=5)
        verdicts = {m["metric"]: m["verdict"] for m in report["metrics"]}
        assert verdicts["specs_per_second"] == "skipped"
        assert verdicts["obs_overhead_fraction"] == "ok"
        assert report["baseline_runs"] == 0

    def test_lower_kind_is_mirrored(self, tmp_path):
        path = tmp_path / "h.jsonl"
        tolerances = {"latency_ms": {"kind": "lower", "tolerance": 0.10}}
        append_history(path, {"latency_ms": 10.0})
        append_history(path, {"latency_ms": 12.0})
        report = compare_history(
            load_history(path), baseline_window=1, tolerances=tolerances
        )
        assert report["regressed"] is True
        append_history(path, {"latency_ms": 10.5})
        report = compare_history(
            load_history(path), baseline_window=1, tolerances=tolerances
        )
        # 10.5 vs baseline 12.0: faster, fine.
        assert report["regressed"] is False

    def test_empty_history_and_bad_window_raise(self):
        with pytest.raises(ObsError, match="empty"):
            compare_history([])
        with pytest.raises(ObsError, match="baseline_window"):
            compare_history([{"record": {}}], baseline_window=0)

    def test_format_compare_renders_every_metric(self, tmp_path):
        path = tmp_path / "h.jsonl"
        write_history(path, [100.0, 100.0])
        text = format_compare(compare_history(load_history(path)))
        for metric in ("specs_per_second", "obs_overhead_fraction"):
            assert metric in text
        assert text.endswith("ok")
        assert "latest sha: sha1" in text


class TestBenchCompareCli:
    def test_clean_history_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        write_history(path, [100.0, 101.0])
        rc = main(["bench", "compare", "--history", str(path),
                   "--baseline-window", "1"])
        assert rc == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        write_history(path, [100.0, 100.0, 100.0, 80.0])
        rc = main(["bench", "compare", "--history", str(path),
                   "--baseline-window", "3"])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_history_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["bench", "compare", "--history",
                   str(tmp_path / "absent.jsonl")])
        assert rc == 2  # usage/input error, distinct from a regression
        assert "no benchmark history" in capsys.readouterr().err
