"""Span tracing: hierarchy, cross-process context, rendering."""

import pytest

from repro.obs import (
    COLLECTOR,
    Span,
    bind_context,
    current_context,
    drain_spans,
    render_flame,
    set_enabled,
    trace,
)


@pytest.fixture(autouse=True)
def clean_collector():
    COLLECTOR.clear()
    yield
    COLLECTOR.clear()


class TestSpans:
    def test_nested_spans_share_a_trace(self):
        with trace("outer") as outer:
            with trace("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration >= inner.duration >= 0.0

    def test_sibling_spans_share_parent(self):
        with trace("root") as root:
            with trace("a") as a:
                pass
            with trace("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id

    def test_exception_marks_error_and_reraises(self):
        with pytest.raises(RuntimeError):
            with trace("boom") as span:
                raise RuntimeError("nope")
        assert span.status == "error"
        assert span.attrs["error"] == "RuntimeError"
        # The errored span was still recorded.
        assert any(s["name"] == "boom" for s in drain_spans())

    def test_current_context_inside_and_outside(self):
        assert current_context() is None
        with trace("x") as span:
            assert current_context() == f"{span.trace_id}:{span.span_id}"
        assert current_context() is None

    def test_bind_context_adopts_remote_parent(self):
        with bind_context("cafe1234:beef5678"):
            with trace("child") as child:
                pass
        assert child.trace_id == "cafe1234"
        assert child.parent_id == "beef5678"

    def test_bind_context_tolerates_garbage(self):
        ran = False
        for ctx in (None, "", "no-colon", ":::"):
            with bind_context(ctx):
                ran = True
        assert ran

    def test_drain_empties_the_collector(self):
        with trace("a"):
            pass
        spans = drain_spans()
        assert [s["name"] for s in spans] == ["a"]
        assert drain_spans() == []
        assert len(COLLECTOR) == 0

    def test_collector_ingest_round_trips_dicts(self):
        with trace("shipped"):
            pass
        payloads = drain_spans()
        accepted = COLLECTOR.ingest(payloads)
        assert accepted == 1
        trace_id = payloads[0]["trace_id"]
        assert [s.name for s in COLLECTOR.spans(trace_id)] == ["shipped"]

    def test_disabled_tracing_records_nothing(self):
        set_enabled(False)
        try:
            with trace("ghost") as span:
                assert current_context() is None
            assert span.span_id == ""
            assert len(COLLECTOR) == 0
        finally:
            set_enabled(True)


class TestFlameRendering:
    def test_tree_shape_and_bars(self):
        spans = [
            Span("sweep", "t", "a", None, 0.0, 1.0).to_dict(),
            Span("http.request", "t", "b", "a", 0.1, 0.4).to_dict(),
            Span("replay", "t", "c", "b", 0.2, 0.2).to_dict(),
        ]
        rendered = render_flame(spans)
        lines = rendered.splitlines()
        assert any(line.startswith("sweep") for line in lines)
        # Children indent under their parents.
        assert any(line.startswith("  http.request") for line in lines)
        assert any(line.startswith("    replay") for line in lines)

    def test_orphans_are_promoted_to_roots(self):
        spans = [Span("lost", "t", "x", "gone", 0.0, 0.5).to_dict()]
        assert "lost" in render_flame(spans)
