"""SLO rules, alert state machine, component health, and /healthz.

Covers the rule engine's ok → firing → resolved → firing transitions
under an injected clock, the ``repro_alerts_firing`` gauge mirror, the
no-data-is-healthy convention, ratio rules with a denominator floor,
the pure :func:`component_health` fold, the watchdog tick cycle, and —
end to end — a real :class:`ExperimentService` whose ``/healthz``
flips to 503 when a worker's lease lapses without a heartbeat and
recovers once the job completes.
"""

import time

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import (
    REGISTRY,
    HealthWatchdog,
    MetricsJournal,
    Rule,
    RuleEngine,
    component_health,
    default_rules,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import ExperimentService
from repro.store import ExperimentStore


class Clock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


@pytest.fixture
def journal(tmp_path, registry, clock):
    journal = MetricsJournal(
        tmp_path / "telemetry.sqlite", registry=registry, clock=clock
    )
    yield journal
    journal.close()


def load_rule(threshold: float = 5.0) -> Rule:
    return Rule(
        name="load_high",
        metric="load",
        op=">",
        threshold=threshold,
        window_seconds=60.0,
        aggregate="last",
        component="service",
        description="load above threshold",
    )


class TestRule:
    def test_unknown_op_rejected(self):
        with pytest.raises(ObsError, match="unknown op"):
            Rule(name="r", metric="m", op="~", threshold=1.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ObsError, match="window_seconds"):
            Rule(name="r", metric="m", op=">", threshold=1.0, window_seconds=0)

    def test_evaluate_returns_none_without_data(self, journal):
        assert load_rule().evaluate(journal, now=100.0) is None

    def test_ratio_below_min_denominator_is_no_data(self, journal, registry):
        counter = registry.counter("req_total", "t", labels=("status",))
        rule = Rule(
            name="error_ratio",
            metric="req_total",
            op=">",
            threshold=0.10,
            window_seconds=120.0,
            aggregate="increase",
            labels={"status": "5*"},
            denominator_metric="req_total",
            min_denominator=10.0,
        )
        counter.inc(0, status="200")
        counter.inc(0, status="500")
        journal.record(now=100.0)
        counter.inc(3, status="200")
        counter.inc(3, status="500")
        journal.record(now=110.0)
        # Ratio would be 0.5, but only 6 requests total: noise, not data.
        assert rule.evaluate(journal, now=110.0) is None
        counter.inc(17, status="200")
        counter.inc(5, status="500")
        journal.record(now=120.0)
        # Now 28 requests, 8 of them errors.
        assert rule.evaluate(journal, now=120.0) == pytest.approx(8 / 28)


class TestRuleEngine:
    def test_duplicate_rule_names_rejected(self, journal):
        with pytest.raises(ObsError, match="duplicate"):
            RuleEngine(journal, [load_rule(), load_rule()])

    def test_firing_resolved_firing_lifecycle(self, journal, registry, clock):
        gauge = registry.gauge("load", "t")
        engine = RuleEngine(journal, [load_rule()])
        assert engine.clock is clock  # defaults to the journal's clock

        gauge.set(1.0)
        journal.record(now=100.0)
        (alert,) = engine.evaluate(now=100.0)
        assert alert["state"] == "ok"
        assert alert["transitions"] == 0
        assert engine.firing() == []

        gauge.set(9.0)
        journal.record(now=110.0)
        (alert,) = engine.evaluate(now=110.0)
        assert alert["state"] == "firing"
        assert alert["fired_at"] == 110.0
        assert alert["since"] == 110.0
        assert alert["value"] == 9.0
        assert engine.firing() == ["load_high"]
        assert engine.components_degraded() == {"service": ["load_high"]}

        # Still breached: state and timestamps hold, no new transition.
        (alert,) = engine.evaluate(now=115.0)
        assert alert["state"] == "firing"
        assert alert["since"] == 110.0
        assert alert["transitions"] == 1

        gauge.set(2.0)
        journal.record(now=120.0)
        (alert,) = engine.evaluate(now=120.0)
        assert alert["state"] == "resolved"
        assert alert["resolved_at"] == 120.0
        assert alert["fired_at"] == 110.0  # the incident stays visible
        assert alert["transitions"] == 2
        assert engine.firing() == []

        gauge.set(9.0)
        journal.record(now=130.0)
        (alert,) = engine.evaluate(now=130.0)
        assert alert["state"] == "firing"
        assert alert["fired_at"] == 130.0
        assert alert["transitions"] == 3

    def test_no_data_never_fires(self, journal, clock):
        engine = RuleEngine(journal, [load_rule()])
        (alert,) = engine.evaluate(now=100.0)
        assert alert["state"] == "ok"
        assert alert["value"] is None

    def test_firing_gauge_mirrors_alert_state(self, journal, registry):
        gauge = registry.gauge("load", "t")
        engine = RuleEngine(journal, [load_rule()])
        mirror = REGISTRY.get("repro_alerts_firing")

        gauge.set(9.0)
        journal.record(now=100.0)
        engine.evaluate(now=100.0)
        assert mirror.value(alert="load_high") == 1.0

        gauge.set(1.0)
        journal.record(now=110.0)
        engine.evaluate(now=110.0)
        assert mirror.value(alert="load_high") == 0.0

    def test_alerts_reports_without_reevaluating(self, journal, registry):
        gauge = registry.gauge("load", "t")
        engine = RuleEngine(journal, [load_rule()])
        gauge.set(9.0)
        journal.record(now=100.0)
        engine.evaluate(now=100.0)
        gauge.set(1.0)
        journal.record(now=110.0)
        # alerts() is a read: the breach is still on record.
        assert engine.alerts()[0]["state"] == "firing"

    def test_default_rules_cover_the_six_slos(self):
        rules = default_rules()
        assert sorted(rule.name for rule in rules) == [
            "admission_shed_rate",
            "queue_oldest_claimable_age",
            "service_error_ratio",
            "service_p99_latency",
            "stream_sessions_idle_pileup",
            "worker_heartbeat_stale",
        ]
        assert {rule.component for rule in rules} == {
            "service", "queue", "workers", "sessions", "admission",
        }


class TestComponentHealth:
    def _slo(self, **overrides):
        slo = {
            "oldest_queued_age_seconds": None,
            "queued": 0,
            "running": 0,
            "lease_overdue_jobs": 0,
            "lease_overdue_seconds": 0.0,
        }
        slo.update(overrides)
        return slo

    def test_all_ok(self):
        report = component_health(True, self._slo(), {"active": 0}, None)
        assert report["status"] == "ok"
        assert report["alerts_firing"] == 0
        assert set(report["components"]) == {
            "store", "queue", "workers", "sessions",
        }

    def test_unwritable_store_degrades(self):
        report = component_health(False, self._slo(), {}, None)
        assert report["status"] == "degraded"
        assert report["components"]["store"]["status"] == "degraded"

    def test_stuck_queue_degrades(self):
        report = component_health(
            True, self._slo(oldest_queued_age_seconds=500.0, queued=3), {}, None
        )
        assert report["components"]["queue"]["status"] == "degraded"
        assert report["status"] == "degraded"

    def test_overdue_lease_degrades_workers(self):
        report = component_health(
            True,
            self._slo(lease_overdue_jobs=1, lease_overdue_seconds=30.0),
            {},
            None,
        )
        assert report["components"]["workers"]["status"] == "degraded"

    def test_firing_alert_degrades_its_component(self, journal, registry):
        gauge = registry.gauge("load", "t")
        engine = RuleEngine(journal, [load_rule()])
        gauge.set(9.0)
        journal.record(now=100.0)
        engine.evaluate(now=100.0)
        report = component_health(True, self._slo(), {}, engine)
        assert report["status"] == "degraded"
        assert report["components"]["service"]["alerts"] == ["load_high"]
        assert report["firing"] == ["load_high"]
        assert report["alerts_firing"] == 1


class TestHealthWatchdog:
    def test_tick_records_and_evaluates(self, journal, registry, clock):
        gauge = registry.gauge("load", "t")
        collected = []
        engine = RuleEngine(journal, [load_rule()])
        watchdog = HealthWatchdog(
            journal,
            engine,
            interval_seconds=5.0,
            collect=lambda: collected.append(True),
            prune_every=2,
        )
        gauge.set(9.0)
        watchdog.tick(now=100.0)
        assert collected == [True]
        assert journal.latest("load")["value"] == 9.0
        assert engine.firing() == ["load_high"]
        # Second tick hits the prune cadence without disturbing state.
        watchdog.tick(now=105.0)
        assert watchdog.ticks == 2

    def test_nonpositive_interval_rejected(self, journal):
        with pytest.raises(ObsError):
            HealthWatchdog(journal, None, interval_seconds=0)

    def test_start_and_stop(self, tmp_path, registry):
        registry.gauge("load", "t").set(1.0)
        journal = MetricsJournal(tmp_path / "wd.sqlite", registry=registry)
        watchdog = HealthWatchdog(journal, None, interval_seconds=0.01)
        try:
            watchdog.start()
            assert watchdog.running
            deadline = time.monotonic() + 5.0
            while not journal.query("load"):
                assert time.monotonic() < deadline, "watchdog never ticked"
                time.sleep(0.01)
            watchdog.stop()
            assert not watchdog.running
        finally:
            watchdog.stop()
            journal.close()


class TestServiceHealth:
    """End-to-end /healthz over a real service, no sockets."""

    def test_healthz_ok_on_a_fresh_service(self, tmp_path):
        service = ExperimentService(ExperimentStore(tmp_path / "store"))
        try:
            status, payload = service.handle("GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["components"]["store"]["writable"] is True
            assert payload["firing"] == []
            # The synchronous tick journaled a snapshot.
            assert service.journal.metrics()
        finally:
            service.close()

    def test_stale_worker_fires_and_recovers(self, tmp_path):
        """The acceptance scenario: a claimed job whose lease lapses
        without a heartbeat flips /healthz to 503 with
        ``worker_heartbeat_stale`` firing; completing the job resolves
        the alert and /healthz returns to 200."""
        service = ExperimentService(ExperimentStore(tmp_path / "store"))
        try:
            # Tighten the heartbeat SLO so the test doesn't wait 5 s.
            service.engine = RuleEngine(
                service.journal,
                default_rules(heartbeat_overdue_seconds=0.05),
            )
            service.watchdog.engine = service.engine

            service.queue.submit("sweep", [("k1", {"workload": "galgel"})])
            (job,) = service.queue.claim("w1", lease_seconds=0.05)
            time.sleep(0.2)  # lease lapses, no heartbeat arrives

            status, payload = service.handle("GET", "/healthz")
            assert status == 503
            assert payload["status"] == "degraded"
            assert "worker_heartbeat_stale" in payload["firing"]
            assert payload["components"]["workers"]["status"] == "degraded"

            status, payload = service.handle("GET", "/alerts")
            assert "worker_heartbeat_stale" in payload["firing"]

            service.queue.complete(job["id"], worker_id="w1")
            status, payload = service.handle("GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["firing"] == []
            (alert,) = [
                a for a in service.engine.alerts()
                if a["name"] == "worker_heartbeat_stale"
            ]
            assert alert["state"] == "resolved"
            assert alert["transitions"] == 2
        finally:
            service.close()

    def test_journal_survives_service_restart(self, tmp_path):
        """The satellite durability requirement: a reborn service over
        the same store root reads its predecessor's telemetry."""
        store_root = tmp_path / "store"
        first = ExperimentService(ExperimentStore(store_root))
        try:
            status, _ = first.handle("GET", "/healthz")
            assert status == 200
            before = len(first.journal.query("repro_http_requests_total"))
            assert before > 0
        finally:
            first.close()

        reborn = ExperimentService(ExperimentStore(store_root))
        try:
            assert reborn.journal.path == first.journal.path
            persisted = reborn.journal.query("repro_http_requests_total")
            assert len(persisted) == before
            status, _ = reborn.handle("GET", "/healthz")
            assert len(
                reborn.journal.query("repro_http_requests_total")
            ) > before
        finally:
            reborn.close()

    def test_disabled_obs_still_answers_healthz(self, tmp_path):
        obs.set_enabled(False)
        try:
            service = ExperimentService(ExperimentStore(tmp_path / "store"))
            try:
                assert service.journal is None
                assert service.watchdog is None
                status, payload = service.handle("GET", "/healthz")
                assert status == 200
                assert payload["status"] == "ok"
                status, payload = service.handle("GET", "/alerts")
                assert status == 200
                assert payload["enabled"] is False
                assert payload["alerts"] == []
            finally:
                service.close()
        finally:
            obs.set_enabled(True)
