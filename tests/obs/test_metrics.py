"""The metrics registry: exact under concurrency, faithful on the wire."""

import concurrent.futures
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)


def _pool_worker_increments(n: int) -> float:
    """Top-level (picklable) pool task: hammer this process's registry."""
    registry = MetricsRegistry()
    counter = registry.counter("pool_hits_total", "per-process counter")
    for _ in range(n):
        counter.inc()
    return counter.total()


class TestCounters:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "test", labels=("worker",))
        threads = 8
        per_thread = 10_000

        def hammer(worker: int) -> None:
            for _ in range(per_thread):
                counter.inc(worker=str(worker))

        pool = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.total() == threads * per_thread
        for worker in range(threads):
            assert counter.value(worker=str(worker)) == per_thread

    def test_process_pool_registries_are_independent_and_exact(self):
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            totals = list(pool.map(_pool_worker_increments, [500, 500]))
        assert totals == [500.0, 500.0]

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_unknown_label_rejected(self):
        counter = MetricsRegistry().counter("c_total", labels=("kind",))
        with pytest.raises(ValueError):
            counter.inc(flavor="nope")

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("b",))
        # Identical redeclaration is get-or-create, not an error.
        assert registry.counter("x_total", labels=("a",)) is registry.get("x_total")

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        counter.inc(5)
        assert counter.total() == 0


class TestHistograms:
    def test_bucket_edges_are_le_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 9.0):
            hist.observe(value)
        snap = hist.snapshot()["series"][0]
        # Raw (non-cumulative) slots: (-inf,1], (1,2], (2,+inf)
        assert snap["buckets"] == [2, 2, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(14.0)

    def test_type_confusion_raises(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds")
        with pytest.raises(TypeError):
            hist.inc()
        with pytest.raises(TypeError):
            registry.counter("c_total").observe(1.0)

    def test_quantiles_interpolate_within_bucket(self):
        hist = MetricsRegistry().histogram("h_seconds")
        for _ in range(100):
            hist.observe(0.003)  # falls in the (0.0025, 0.005] bucket
        summary = hist.summary()
        assert summary["count"] == 100
        assert 0.0025 <= summary["p50"] <= 0.005
        assert 0.0025 <= summary["p99"] <= 0.005

    def test_concurrent_observes_are_exact(self):
        hist = MetricsRegistry().histogram("h_seconds")
        per_thread = 5_000

        def hammer() -> None:
            for _ in range(per_thread):
                hist.observe(0.01)

        pool = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        summary = hist.summary()
        assert summary["count"] == 4 * per_thread
        assert summary["sum"] == pytest.approx(4 * per_thread * 0.01)

    def test_snapshot_is_internally_consistent_under_writes(self):
        """count must equal the bucket-count sum in every snapshot."""
        hist = MetricsRegistry().histogram("h_seconds")
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                hist.observe(0.01)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snap = hist.snapshot()["series"]
                for child in snap:
                    assert sum(child["buckets"]) == child["count"]
        finally:
            stop.set()
            thread.join()


class TestPrometheusExposition:
    def test_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "requests", labels=("route",))
        counter.inc(3, route="/stats")
        counter.inc(route='/runs/:key')
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(7)
        hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)

        text = registry.render()
        assert "# TYPE req_total counter" in text
        assert "# TYPE lat_seconds histogram" in text
        parsed = parse_prometheus(text)
        assert parsed["req_total"][(("route", "/stats"),)] == 3
        assert parsed["req_total"][(("route", "/runs/:key"),)] == 1
        assert parsed["depth"][()] == 7
        buckets = parsed["lat_seconds_bucket"]
        assert buckets[(("le", "0.1"),)] == 1
        assert buckets[(("le", "1"),)] == 1  # cumulative: nothing new
        assert buckets[(("le", "+Inf"),)] == 2
        assert parsed["lat_seconds_count"][()] == 2
        assert parsed["lat_seconds_sum"][()] == pytest.approx(5.05)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", labels=("msg",))
        counter.inc(msg='quote " slash \\ newline \n end')
        parsed = parse_prometheus(registry.render())
        (labels,) = parsed["esc_total"]
        assert dict(labels)["msg"] == 'quote " slash \\ newline \n end'

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
