"""ServiceClient transport telemetry: retry causes and backoff time."""

import socket

import pytest

from repro.obs import REGISTRY
from repro.service.client import ServiceClient, ServiceError


@pytest.fixture
def dead_url():
    """A URL nothing is listening on (bound then closed, so it's ours)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"http://127.0.0.1:{port}"


def counter_total(name: str, **labels: str) -> float:
    family = REGISTRY.get(name)
    if family is None:
        return 0.0
    if labels:
        return family.value(**labels)
    return family.total()


class TestRetryTelemetry:
    def test_refused_connection_counts_retries_and_backoff(self, dead_url):
        retries_before = counter_total(
            "repro_client_retries_total", cause="connection_refused"
        )
        backoff_before = counter_total("repro_client_backoff_seconds_total")
        unreachable_before = counter_total(
            "repro_client_requests_total", method="GET", outcome="unreachable"
        )

        client = ServiceClient(dead_url, max_retries=2, retry_backoff=0.001)
        with pytest.raises(ServiceError) as err:
            client.stats()
        assert err.value.status == 0

        # The client-local counters and the registry mirror must agree.
        assert client.retries == 2
        assert client.backoff_seconds > 0.0
        assert (
            counter_total("repro_client_retries_total", cause="connection_refused")
            == retries_before + 2
        )
        assert (
            counter_total("repro_client_backoff_seconds_total")
            >= backoff_before + client.backoff_seconds
        )
        assert (
            counter_total(
                "repro_client_requests_total", method="GET", outcome="unreachable"
            )
            == unreachable_before + 1
        )

    def test_non_idempotent_post_does_not_retry(self, dead_url):
        retries_before = counter_total("repro_client_retries_total")
        client = ServiceClient(dead_url, max_retries=3, retry_backoff=0.001)
        with pytest.raises(ServiceError):
            client.request("/runs", {"specs": []})
        assert client.retries == 0
        assert counter_total("repro_client_retries_total") == retries_before
