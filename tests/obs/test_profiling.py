"""Profiling hooks: phase wall-clock attribution and peak RSS."""

import time

from repro.obs import PhaseProfiler, peak_rss_bytes


def test_peak_rss_is_plausible():
    rss = peak_rss_bytes()
    # A running CPython interpreter needs at least a few MiB.
    assert rss > 4 * 1024 * 1024


def test_phases_accumulate_and_preserve_order():
    profiler = PhaseProfiler()
    with profiler.phase("b"):
        time.sleep(0.01)
    with profiler.phase("a"):
        time.sleep(0.01)
    with profiler.phase("b"):  # re-entry accumulates into the same line
        time.sleep(0.01)
    report = profiler.report()
    assert list(report["phase_seconds"]) == ["b", "a"]
    assert report["phase_seconds"]["b"] >= 0.02
    assert report["phase_seconds"]["a"] >= 0.01
    assert report["profiled_seconds"] <= report["total_seconds"]
    assert report["peak_rss_bytes"] == peak_rss_bytes()


def test_exception_still_charges_the_phase():
    profiler = PhaseProfiler()
    try:
        with profiler.phase("doomed"):
            time.sleep(0.01)
            raise ValueError("boom")
    except ValueError:
        pass
    assert profiler.report()["phase_seconds"]["doomed"] >= 0.01
