"""MetricsJournal: round-trips, schema guard, retention, durability.

The journal is the telemetry layer's only persistent state, so these
tests pin down its contract precisely: flattened snapshot rows
(histograms decomposed into ``_count``/``_sum``/``_p50``/``_p99``),
the ``repro.obs/v1`` schema stamp, *deterministic* retention and
downsampling under an injected clock, and samples surviving the
close-and-reopen cycle a service restart performs.
"""

import json
import sqlite3
import threading
import time

import pytest

from repro.errors import ObsError
from repro.obs import MetricsJournal, flatten_snapshot
from repro.obs.metrics import MetricsRegistry


class Clock:
    """Injectable, manually advanced time source."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("hits_total", "test counter", labels=("kind",)).inc(
        3, kind="result"
    )
    registry.gauge("depth", "test gauge").set(7.0)
    histogram = registry.histogram("latency_seconds", "test histogram")
    for value in (0.01, 0.02, 0.04):
        histogram.observe(value)
    return registry


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def journal(tmp_path, registry, clock):
    journal = MetricsJournal(
        tmp_path / "telemetry.sqlite",
        registry=registry,
        clock=clock,
        retention_seconds=3600.0,
        downsample_after_seconds=600.0,
        downsample_interval_seconds=60.0,
    )
    yield journal
    journal.close()


class TestFlattenSnapshot:
    def test_counters_and_gauges_keep_their_names(self, registry):
        rows = flatten_snapshot(registry.snapshot())
        by_metric = {metric: value for metric, _, value in rows}
        assert by_metric["hits_total"] == 3.0
        assert by_metric["depth"] == 7.0

    def test_histograms_decompose_into_quantile_series(self, registry):
        rows = {metric: value for metric, _, value in
                flatten_snapshot(registry.snapshot())}
        assert rows["latency_seconds_count"] == 3.0
        assert rows["latency_seconds_sum"] == pytest.approx(0.07)
        assert 0.0 < rows["latency_seconds_p50"] <= rows["latency_seconds_p99"]

    def test_labels_serialize_canonically(self, registry):
        rows = flatten_snapshot(registry.snapshot())
        labels = [l for metric, l, _ in rows if metric == "hits_total"]
        assert labels == [json.dumps({"kind": "result"}, sort_keys=True)]


class TestRecordAndQuery:
    def test_round_trip(self, journal, clock):
        written = journal.record()
        assert written > 0
        samples = journal.query("hits_total")
        assert samples == [
            {"ts": clock.now, "labels": {"kind": "result"}, "value": 3.0}
        ]
        assert journal.latest("depth")["value"] == 7.0
        assert "latency_seconds_p99" in journal.metrics()

    def test_label_filter_supports_wildcards(self, journal, registry):
        registry.counter("http_total", "t", labels=("status",)).inc(2, status="500")
        registry.counter("http_total", "t", labels=("status",)).inc(5, status="200")
        journal.record()
        errors = journal.query("http_total", labels={"status": "5*"})
        assert [s["value"] for s in errors] == [2.0]

    def test_aggregate_increase_sums_per_series_deltas(self, journal, clock):
        journal.record(now=1000.0)
        journal.registry.get("hits_total").inc(4, kind="result")
        journal.record(now=1030.0)
        clock.now = 1030.0
        assert journal.aggregate("hits_total", 60.0, agg="increase") == 4.0
        # last/max/min/avg over the same window
        assert journal.aggregate("depth", 60.0, agg="last") == 7.0
        with pytest.raises(ObsError):
            journal.aggregate("depth", 60.0, agg="median")

    def test_no_data_aggregates_to_none(self, journal):
        assert journal.aggregate("never_recorded", 60.0) is None

    def test_series_sums_label_sets_per_timestamp(self, journal, registry):
        counter = registry.counter("multi_total", "t", labels=("kind",))
        counter.inc(1, kind="a")
        counter.inc(2, kind="b")
        journal.record(now=1000.0)
        counter.inc(10, kind="a")
        journal.record(now=1010.0)
        assert journal.series("multi_total") == [3.0, 13.0]

    def test_disabled_registry_records_nothing(self, tmp_path, clock):
        registry = MetricsRegistry(enabled=False)
        journal = MetricsJournal(
            tmp_path / "off.sqlite", registry=registry, clock=clock
        )
        try:
            assert journal.record() == 0
            assert journal.metrics() == []
        finally:
            journal.close()


class TestSchemaGuard:
    def test_foreign_schema_raises_obs_error(self, tmp_path):
        path = tmp_path / "telemetry.sqlite"
        MetricsJournal(path).close()
        db = sqlite3.connect(path)
        db.execute("UPDATE meta SET value='repro.obs/v999' WHERE key='schema'")
        db.commit()
        db.close()
        with pytest.raises(ObsError, match="repro.obs/v999"):
            MetricsJournal(path)

    def test_validation_errors(self, tmp_path):
        with pytest.raises(ObsError):
            MetricsJournal(tmp_path / "j.sqlite", retention_seconds=0)
        with pytest.raises(ObsError):
            MetricsJournal(
                tmp_path / "j.sqlite", downsample_interval_seconds=0
            )


class TestRetention:
    def test_expiry_is_a_pure_cutoff(self, journal, clock):
        journal.record(now=100.0)
        journal.record(now=200.0)
        clock.now = 200.0 + 3600.0  # exactly at retention for ts=200
        report = journal.prune()
        # ts=100 is past retention; ts=200 sits on the boundary (kept).
        assert report["expired"] == len(flatten_snapshot(
            journal.registry.snapshot()
        ))
        assert journal.query("depth") == [
            {"ts": 200.0, "labels": {}, "value": 7.0}
        ]

    def test_downsample_keeps_last_sample_per_bucket(self, tmp_path, clock):
        registry = MetricsRegistry(enabled=True)
        gauge = registry.gauge("g", "t")
        journal = MetricsJournal(
            tmp_path / "j.sqlite",
            registry=registry,
            clock=clock,
            retention_seconds=100000.0,
            downsample_after_seconds=600.0,
            downsample_interval_seconds=60.0,
        )
        try:
            # Two samples land in bucket [60, 120), three in [120, 180).
            for ts, value in ((100.0, 1.0), (110.0, 2.0), (150.0, 3.0),
                              (170.0, 4.0), (175.0, 5.0)):
                gauge.set(value)
                journal.record(now=ts)
            clock.now = 175.0 + 600.0 + 60.0  # all five are thin-eligible
            report = journal.prune()
            assert report == {"expired": 0, "downsampled": 3, "remaining": 2}
            survivors = journal.query("g")
            assert [(s["ts"], s["value"]) for s in survivors] == [
                (110.0, 2.0),  # last of bucket [60, 120)
                (175.0, 5.0),  # last of bucket [120, 180)
            ]
        finally:
            journal.close()

    def test_prune_is_deterministic_under_reruns(self, journal, clock):
        journal.record(now=100.0)
        clock.now = 100.0 + 3600.0 + 1.0
        first = journal.prune()
        again = journal.prune()
        assert first["expired"] > 0
        assert again == {"expired": 0, "downsampled": 0, "remaining": 0}


class TestDurability:
    def test_samples_survive_close_and_reopen(self, tmp_path, registry, clock):
        path = tmp_path / "telemetry.sqlite"
        journal = MetricsJournal(path, registry=registry, clock=clock)
        journal.record(now=1000.0)
        journal.close()
        # The restart: a fresh journal object over the same file.
        reborn = MetricsJournal(path, registry=registry, clock=clock)
        try:
            assert reborn.latest("hits_total")["value"] == 3.0
            reborn.record(now=1010.0)
            assert len(reborn.query("hits_total")) == 2
        finally:
            reborn.close()

    def test_kill_mid_journal_leaves_committed_samples_readable(
        self, tmp_path, registry, clock
    ):
        """A journal abandoned without close() (a killed process) must
        leave every committed sample queryable on the next open — WAL
        plus per-record transactions make partially written batches
        impossible."""
        path = tmp_path / "telemetry.sqlite"
        journal = MetricsJournal(path, registry=registry, clock=clock)
        journal.record(now=1000.0)
        journal.record(now=1001.0)
        # Simulate SIGKILL: drop the object without close(); the WAL
        # file still holds the committed transactions.
        del journal
        reborn = MetricsJournal(path, registry=registry, clock=clock)
        try:
            assert len(reborn.query("depth")) == 2
        finally:
            reborn.close()


class TestBackgroundSampler:
    def test_start_samples_and_stop_halts(self, tmp_path, registry):
        journal = MetricsJournal(tmp_path / "bg.sqlite", registry=registry)
        try:
            journal.start(interval_seconds=0.01, prune_every=2)
            deadline = time.monotonic() + 5.0
            while not journal.query("depth"):
                assert time.monotonic() < deadline, "sampler never recorded"
                time.sleep(0.01)
            journal.stop()
            count = len(journal.query("depth"))
            time.sleep(0.05)
            assert len(journal.query("depth")) == count
        finally:
            journal.close()

    def test_close_is_safe_under_running_sampler(self, tmp_path, registry):
        journal = MetricsJournal(tmp_path / "race.sqlite", registry=registry)
        journal.start(interval_seconds=0.01)
        time.sleep(0.03)
        journal.close()  # must stop the thread, not raise
        assert journal._sampler is None

    def test_concurrent_records_are_all_committed(self, tmp_path, registry):
        journal = MetricsJournal(tmp_path / "mt.sqlite", registry=registry)
        try:
            threads = [
                threading.Thread(
                    target=lambda base: [
                        journal.record(now=base + i) for i in range(5)
                    ],
                    args=(100.0 * n,),
                )
                for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(journal.query("depth")) == 20
        finally:
            journal.close()
