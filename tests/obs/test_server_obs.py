"""Service observability over real HTTP: /metrics, /trace, invariants.

A threaded server on an ephemeral port (the same fixture shape as the
scheduler acceptance tests), asserting the observability contract:
``GET /metrics`` serves parseable Prometheus text covering the
service, scheduler, store, and cache; a distributed sweep produces one
connected trace spanning client, service, and two workers; and the
scraped counters obey conservation (claims == completions, store
hits + misses == lookups) with instrumentation enabled.
"""

import logging
import threading
import time
import urllib.request

import pytest

from repro.obs import COLLECTOR, current_context, trace
from repro.obs.metrics import parse_prometheus
from repro.run import MissStreamCache, Runner, RunSpec
from repro.sched import SchedulerClient, Worker
from repro.service import ServiceClient, ServiceError, make_server

SCALE = 0.05


def sweep_specs():
    return [
        RunSpec.of(app, mechanism, scale=SCALE, rows=64)
        for app in ("galgel", "swim")
        for mechanism in ("DP", "RP", "ASP")
    ]


@pytest.fixture
def server(tmp_path):
    server = make_server(tmp_path / "store", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def client(server):
    client = SchedulerClient(server.url)
    client.wait_healthy()
    return client


def scrape(url: str) -> dict:
    with urllib.request.urlopen(url + "/metrics", timeout=10) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return parse_prometheus(response.read().decode())


def metric_sum(parsed: dict, metric: str, **labels: str) -> float:
    """Sum a parsed metric's children matching a label subset."""
    want = set(labels.items())
    return sum(
        value
        for label_tuple, value in parsed.get(metric, {}).items()
        if want <= set(label_tuple)
    )


class fleet:
    """``with fleet(url, n):`` — n Worker threads, stopped on exit."""

    def __init__(self, url: str, count: int, **worker_kwargs) -> None:
        worker_kwargs.setdefault("lease_seconds", 5.0)
        worker_kwargs.setdefault("poll_interval", 0.02)
        self.workers = [Worker(url, **worker_kwargs) for _ in range(count)]
        self.threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in self.workers
        ]

    def __enter__(self) -> "fleet":
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        for worker in self.workers:
            worker.stop()
        for thread in self.threads:
            thread.join(timeout=10)


class TestMetricsEndpoint:
    def test_serves_parseable_prometheus_text(self, server, client):
        client.stats()
        parsed = scrape(server.url)
        # Service layer: per-route request counters and latency.
        assert metric_sum(parsed, "repro_http_requests_total", route="/stats") >= 1
        assert metric_sum(parsed, "repro_http_request_seconds_count") >= 1
        # Scheduler layer: queue depth gauges for every state.
        for state in ("queued", "running", "done", "failed", "cancelled"):
            assert (("state", state),) in parsed["repro_sched_jobs"]
        # Store layer: entry gauges per artifact kind.
        for kind in ("result", "stream", "ckpt"):
            assert (("kind", kind),) in parsed["repro_store_entries"]
        assert "repro_store_total_bytes" in parsed
        # Cache layer: scrape-time entry gauge.
        assert "repro_stream_cache_entries" in parsed

    def test_route_labels_are_normalized(self, server, client):
        try:
            client.run("nonexistent-key")
        except Exception:
            pass  # 404 is fine; the request must still be counted
        parsed = scrape(server.url)
        assert (
            metric_sum(parsed, "repro_http_requests_total", route="/runs/:key") >= 1
        )
        routes = {
            dict(labels).get("route")
            for labels in parsed["repro_http_requests_total"]
        }
        assert "nonexistent-key" not in " ".join(r for r in routes if r)

    def test_stats_carries_a_metrics_section(self, client):
        client.stats()  # guarantee at least one prior request
        metrics = client.stats()["metrics"]
        assert metrics["http_requests"] >= 1
        assert metrics["http_p99_ms"] >= metrics["http_p50_ms"] >= 0.0
        assert "spans_collected" in metrics

    def test_executed_batch_moves_replay_and_store_metrics(self, server, client):
        spec = RunSpec.of("galgel", "DP", scale=SCALE, rows=64).to_dict()
        before = scrape(server.url)
        client.submit([spec])  # cold: replays and writes back
        client.submit([spec])  # warm: served from the store
        after = scrape(server.url)
        replays = lambda p: metric_sum(p, "repro_replay_entries_total")  # noqa: E731
        assert replays(after) > replays(before)
        lookups = lambda p: metric_sum(  # noqa: E731
            p, "repro_store_lookups_total", kind="result"
        )
        assert lookups(after) >= lookups(before) + 2


class TestTraceEndpoints:
    def test_push_then_fetch_round_trips(self, client):
        spans = [
            {
                "name": "external.step",
                "trace_id": "feed0001",
                "span_id": "aa01",
                "parent_id": None,
                "start": 1.0,
                "duration": 0.25,
                "status": "ok",
                "attrs": {"origin": "test"},
            }
        ]
        assert client.push_spans(spans)["accepted"] == 1
        fetched = client.fetch_trace("feed0001")
        assert fetched["count"] == 1
        assert fetched["spans"][0]["name"] == "external.step"
        summaries = client.fetch_trace()["traces"]
        assert any(t["trace_id"] == "feed0001" for t in summaries)

    def test_malformed_span_push_rejected(self, client):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as err:
            client.push_spans("not-a-list")  # type: ignore[arg-type]
        assert err.value.status == 400

    def test_trace_header_joins_client_and_server_spans(self, client):
        COLLECTOR.clear()
        with trace("probe") as span:
            ctx = current_context()
            assert ctx is not None and ctx.startswith(span.trace_id)
            client.stats()
        server_spans = COLLECTOR.spans(span.trace_id)
        requests = [s for s in server_spans if s.name == "http.request"]
        assert requests, "server span did not join the client's trace"
        assert all(s.trace_id == span.trace_id for s in requests)


class TestDistributedTraceAndConservation:
    def test_sweep_yields_one_connected_trace_across_two_workers(
        self, server, client
    ):
        COLLECTOR.clear()
        specs = sweep_specs()
        serial = Runner(cache=MissStreamCache()).run(specs)
        before = scrape(server.url)
        # batch=1 + a per-job delay so both workers demonstrably claim.
        with fleet(server.url, 2, batch=1, slow_seconds=0.05):
            results = client.submit_sweep(
                specs, sweep_id="obs-trace-sweep", poll_interval=0.02
            )
        assert results.to_json() == serial.to_json()

        # The sweep root is recorded client-side; find its trace.
        roots = [
            s
            for s in COLLECTOR.spans()
            if s.name == "sweep" and s.attrs.get("sweep_id") == "obs-trace-sweep"
        ]
        assert len(roots) == 1
        trace_id = roots[0].trace_id

        # Workers push spans after each batch; wait for the full trace
        # to assemble, then fetch it through the HTTP endpoint.
        deadline = time.monotonic() + 10.0
        while True:
            spans = client.fetch_trace(trace_id)["spans"]
            names = {s["name"] for s in spans}
            if {"sweep", "http.request", "worker.job", "replay"} <= names:
                break
            assert time.monotonic() < deadline, f"incomplete trace: {names}"
            time.sleep(0.05)

        # Single connected trace: one root, every other span's parent
        # present — client, service, and both workers in one tree.
        ids = {s["span_id"] for s in spans}
        parentless = [s for s in spans if s["parent_id"] is None]
        assert [s["name"] for s in parentless] == ["sweep"]
        dangling = [
            s["name"] for s in spans if s["parent_id"] and s["parent_id"] not in ids
        ]
        assert not dangling, f"orphaned spans: {dangling}"
        workers_seen = {
            s["attrs"]["worker"] for s in spans if s["name"] == "worker.job"
        }
        assert len(workers_seen) >= 2

        # Conservation over the sweep's scrape delta: every claim was
        # either completed (clean run: no failures, requeues, retries,
        # or expiries), and every keyed store get was counted once.
        after = scrape(server.url)
        def delta(metric: str, **labels: str) -> float:
            return metric_sum(after, metric, **labels) - metric_sum(
                before, metric, **labels
            )
        claims = delta("repro_sched_events_total", name="claims")
        assert claims >= len(specs)
        assert claims == delta("repro_sched_events_total", name="completes")
        for event in ("failures", "retries", "leases_requeued", "leases_exhausted"):
            assert delta("repro_sched_events_total", name=event) == 0
        lookups = delta("repro_store_lookups_total", kind="result")
        hits = delta("repro_store_events_total", name="result_hits")
        misses = delta("repro_store_events_total", name="result_misses")
        assert lookups == hits + misses
        assert lookups > 0


class TestAccessLogs:
    def test_requests_are_logged_not_swallowed(self, client, caplog):
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            client.stats()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                hits = [
                    record
                    for record in caplog.records
                    if "GET" in record.getMessage()
                    and "/stats" in record.getMessage()
                ]
                if hits:
                    break
                time.sleep(0.02)
        assert hits, "no access-log line for GET /stats"
        assert any("200" in record.getMessage() for record in hits)


def hit(url: str, path: str) -> int:
    """GET an arbitrary path, returning the status (404s included)."""
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status
    except urllib.error.HTTPError as exc:
        return exc.code


class TestRouteCardinality:
    def test_unroutable_paths_share_one_unknown_label(self, server, client):
        """Arbitrary 404 paths must not mint new route labels — an
        attacker (or a typo loop) probing random URLs would otherwise
        grow /metrics without bound."""
        before = scrape(server.url)
        bogus = [
            "/totally/made/up",
            "/runsx",  # near-miss on a real route prefix
            "/streams/sess-1/frobnicate",  # unknown stream verb
            "/..%2f..%2fetc",
            "/metrics2",
        ]
        for path in bogus:
            assert hit(server.url, path) == 404
        after = scrape(server.url)
        unknown = metric_sum(
            after, "repro_http_requests_total", route="<unknown>"
        ) - metric_sum(before, "repro_http_requests_total", route="<unknown>")
        assert unknown == len(bogus)
        routes = {
            dict(labels).get("route")
            for labels in after["repro_http_requests_total"]
        }
        for path in bogus:
            assert path not in routes
        # The label set is bounded: every route is either a known
        # template or the single unknown bucket.
        for route in routes:
            assert route == "<unknown>" or route.startswith("/")
            assert "frobnicate" not in route


class TestHealthOverHTTP:
    def test_healthz_and_alerts_on_a_healthy_service(self, server, client):
        report = client.healthz()
        assert report["status"] == "ok"
        assert set(report["components"]) >= {
            "store", "queue", "workers", "sessions",
        }
        alerts = client.alerts()
        assert alerts["enabled"] is True
        assert alerts["firing"] == []
        assert {a["name"] for a in alerts["alerts"]} == {
            "service_p99_latency",
            "queue_oldest_claimable_age",
            "worker_heartbeat_stale",
            "service_error_ratio",
            "stream_sessions_idle_pileup",
            "admission_shed_rate",
        }

    def test_firing_alerts_appear_in_the_metrics_scrape(self, server, client):
        # The background watchdog's first tick is seconds away; drive
        # one synchronously so the alert gauges exist to scrape.
        server.service.watchdog.tick()
        parsed = scrape(server.url)
        assert "repro_alerts_firing" in parsed
        # Only this server's stock rules: the mirror gauge lives on
        # the process-wide registry, so other suites' ad-hoc alerts
        # may coexist in the scrape.
        for rule in server.service.engine.rules:
            assert (
                metric_sum(parsed, "repro_alerts_firing", alert=rule.name)
                == 0.0
            )

    def test_degraded_service_returns_503(self, server, client):
        server.service._store_writable = lambda: False
        try:
            with pytest.raises(ServiceError) as err:
                client.healthz()
            assert err.value.status == 503
            assert err.value.payload["status"] == "degraded"
            assert (
                err.value.payload["components"]["store"]["status"]
                == "degraded"
            )
        finally:
            del server.service._store_writable

    def test_wait_healthy_times_out_while_degraded(self, server):
        server.service._store_writable = lambda: False
        try:
            fresh = ServiceClient(server.url)
            began = time.monotonic()
            with pytest.raises(ServiceError) as err:
                fresh.wait_healthy(timeout=0.5, interval=0.05)
            assert err.value.status == 503
            assert time.monotonic() - began >= 0.4  # it really polled
        finally:
            del server.service._store_writable

    def test_wait_healthy_returns_the_report_when_ok(self, server):
        report = ServiceClient(server.url).wait_healthy(timeout=10.0)
        assert report["status"] == "ok"
