"""Tests for the oracle (upper-bound) replay."""

import pytest

from repro.errors import ConfigurationError
from repro.prefetch.factory import PREFETCHER_NAMES, create_prefetcher
from repro.sim.config import TLBConfig
from repro.sim.oracle import coverage_headroom, replay_oracle
from repro.sim.two_phase import filter_tlb, replay_prefetcher
from repro.workloads.registry import get_trace

from conftest import make_trace


class TestOracleBasics:
    def test_lookahead_validation(self):
        trace = make_trace([1, 2, 3])
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        with pytest.raises(ConfigurationError):
            replay_oracle(miss_trace, lookahead=0)

    def test_covers_everything_but_first_miss(self):
        trace = make_trace(list(range(100)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        stats = replay_oracle(miss_trace, lookahead=1)
        assert stats.pb_hits == miss_trace.num_misses - 1
        assert stats.prediction_accuracy > 0.98

    def test_perfect_on_random_streams(self):
        """The oracle separates unlearnable from uncoverable: fma3d's
        random misses are fully coverable with future knowledge."""
        miss_trace = filter_tlb(get_trace("fma3d", 0.05))
        stats = replay_oracle(miss_trace, lookahead=2)
        assert stats.prediction_accuracy > 0.95

    def test_mechanism_label(self):
        trace = make_trace([1, 2, 3])
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        assert replay_oracle(miss_trace, lookahead=3).mechanism == "oracle,k=3"


class TestOracleIsUpperBound:
    @pytest.mark.parametrize("app", ["galgel", "ammp", "swim", "parser"])
    def test_bounds_every_mechanism(self, app):
        miss_trace = filter_tlb(get_trace(app, 0.05))
        ceiling = replay_oracle(miss_trace, lookahead=2).prediction_accuracy
        for name in PREFETCHER_NAMES:
            if name == "none":
                continue
            accuracy = replay_prefetcher(
                miss_trace,
                create_prefetcher(name, rows=256),
                max_prefetches_per_miss=2,
            ).prediction_accuracy
            assert accuracy <= ceiling + 0.02, (app, name, accuracy, ceiling)


class TestHeadroom:
    def test_headroom_nonnegative_and_complementary(self):
        miss_trace = filter_tlb(get_trace("swim", 0.05))
        dp_accuracy = replay_prefetcher(
            miss_trace, create_prefetcher("DP", rows=256)
        ).prediction_accuracy
        headroom = coverage_headroom(miss_trace, dp_accuracy)
        assert headroom >= 0.0
        assert headroom <= 1.0 - dp_accuracy + 0.02
