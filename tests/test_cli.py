"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListApps:
    def test_lists_all_suites(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for fragment in ("spec2000 (26", "mediabench (20", "etch (5", "ptrdist (5"):
            assert fragment in out
        assert "galgel" in out
        assert "high-miss" in out


class TestRun:
    def test_run_prints_stats(self, capsys):
        assert main(["run", "--app", "eon", "--mechanism", "DP", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "eon" in out
        assert "acc=" in out
        assert "misses=" in out

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--app", "nope", "--scale", "0.05"])

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "eon", "--mechanism", "nope"])


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Distance" in out
        assert "In Memory" in out

    def test_table3_small_scale(self, capsys):
        assert main(["table3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ammp" in out
        assert "RP (paper)" in out


class TestFigures:
    def test_figure9_single_panel(self, capsys):
        assert main(["figure9", "--scale", "0.05", "--panel", "slots"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9b" in out
        assert "s = 2" in out


class TestCharacterize:
    def test_characterize_subset(self, capsys):
        assert main(
            ["characterize", "--app", "galgel", "--app", "eon", "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "128e-FA" in out
        assert "galgel" in out
        # eon's hot set exhibits the documented LRU anomaly at 64e.
        assert "anomalies" in out


class TestValidateCommand:
    def test_validate_single_app(self, capsys):
        assert main(["validate", "--app", "eon", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "1 passed" in out


class TestExportTrace:
    def test_round_trip_via_cli(self, capsys, tmp_path):
        out_path = str(tmp_path / "eon.npz")
        assert main(
            ["export-trace", "--app", "eon", "--out", out_path, "--scale", "0.05"]
        ) == 0
        assert main(["run", "--trace-file", out_path, "--mechanism", "DP"]) == 0
        out = capsys.readouterr().out
        assert "acc=" in out


class TestReportCommand:
    def test_report_no_figures(self, capsys, tmp_path):
        out_path = str(tmp_path / "r.md")
        assert main(
            ["report", "--out", out_path, "--scale", "0.05", "--no-figures"]
        ) == 0
        assert "report written" in capsys.readouterr().out
