"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListApps:
    def test_lists_all_suites(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for fragment in ("spec2000 (26", "mediabench (20", "etch (5", "ptrdist (5"):
            assert fragment in out
        assert "galgel" in out
        assert "high-miss" in out


class TestRun:
    def test_run_prints_stats(self, capsys):
        assert main(["run", "--app", "eon", "--mechanism", "DP", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "eon" in out
        assert "acc=" in out
        assert "misses=" in out

    def test_unknown_app_reported_as_error(self, capsys):
        assert main(["run", "--app", "nope", "--scale", "0.05"]) == 2
        assert "error: " in capsys.readouterr().err

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "eon", "--mechanism", "nope"])


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Distance" in out
        assert "In Memory" in out

    def test_table3_small_scale(self, capsys):
        assert main(["table3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ammp" in out
        assert "RP (paper)" in out


class TestFigures:
    def test_figure9_single_panel(self, capsys):
        assert main(["figure9", "--scale", "0.05", "--panel", "slots"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9b" in out
        assert "s = 2" in out


class TestCharacterize:
    def test_characterize_subset(self, capsys):
        assert main(
            ["characterize", "--app", "galgel", "--app", "eon", "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "128e-FA" in out
        assert "galgel" in out
        # eon's hot set exhibits the documented LRU anomaly at 64e.
        assert "anomalies" in out


class TestValidateCommand:
    def test_validate_single_app(self, capsys):
        assert main(["validate", "--app", "eon", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "1 passed" in out


class TestExportTrace:
    def test_round_trip_via_cli(self, capsys, tmp_path):
        out_path = str(tmp_path / "eon.npz")
        assert main(
            ["export-trace", "--app", "eon", "--out", out_path, "--scale", "0.05"]
        ) == 0
        assert main(["run", "--trace-file", out_path, "--mechanism", "DP"]) == 0
        out = capsys.readouterr().out
        assert "acc=" in out


class TestReportCommand:
    def test_report_no_figures(self, capsys, tmp_path):
        out_path = str(tmp_path / "r.md")
        assert main(
            ["report", "--out", out_path, "--scale", "0.05", "--no-figures"]
        ) == 0
        assert "report written" in capsys.readouterr().out


class TestErrorReporting:
    """Library validation errors become one ``error:`` line + exit 2,
    never a traceback from deep inside dispatch."""

    def test_unknown_engine_flag_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "galgel", "--engine", "warp"])
        err = capsys.readouterr().err
        assert "invalid choice: 'warp'" in err
        assert "auto" in err and "reference" in err and "fast" in err

    def test_unknown_engine_in_specs_file_reported_helpfully(
        self, capsys, tmp_path
    ):
        import json

        from repro.run import RunSpec

        spec = RunSpec.of("galgel", "DP", scale=0.05).to_dict()
        spec["engine"] = "warp"
        path = tmp_path / "specs.json"
        path.write_text(json.dumps([spec]))
        assert main(
            ["submit", "--url", "http://127.0.0.1:1", "--specs-file", str(path)]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "unknown engine 'warp'" in err
        assert "'auto', 'reference', 'fast'" in err

    def test_unreachable_service_reported_not_raised(self, capsys, tmp_path):
        assert main(
            ["jobs", "status", "--url", "http://127.0.0.1:1",
             "--request-timeout", "0.2"]
        ) == 2
        assert "error: service unreachable" in capsys.readouterr().err


class TestRequestTimeoutFlag:
    def test_default_and_override_parse(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(["jobs", "status", "--url", "http://x"])
        assert args.request_timeout == 30.0
        args = parser.parse_args(
            ["figure7", "--service-url", "http://x", "--request-timeout", "5"]
        )
        assert args.request_timeout == 5.0
        args = parser.parse_args(
            ["worker", "--url", "http://x", "--request-timeout", "2.5"]
        )
        assert args.request_timeout == 2.5
