"""Unit tests for replay-engine selection and threading.

The bit-identity of the two engines is proven by
``tests/differential/``; these tests pin the *dispatch* contracts:
which engine ``auto`` resolves to, how the ``engine`` knob threads
through RunSpec / Runner / evaluate / simulate / the CLI, and the
loud failures for misuse.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.prefetch.base import HardwareDescription, Prefetcher
from repro.prefetch.factory import create_prefetcher
from repro.run import MissStreamCache, Runner, RunSpec
from repro.sim.engine import ENGINES, fast_preferred, replay, resolve_engine
from repro.sim.fastpath import is_fresh, replay_fast, supports
from repro.sim.functional import simulate
from repro.sim.two_phase import evaluate, replay_prefetcher
from repro.workloads.registry import get_trace

SCALE = 0.05


class _CustomPrefetcher(Prefetcher):
    """A user subclass the fast engine must refuse to second-guess."""

    name = "custom"

    def on_miss(self, pc, page, evicted, pb_hit):
        return self.account([page + 2])

    def describe_hardware(self):
        return HardwareDescription(
            name=self.name, rows="0", row_contents="-", location="-",
            index_source="-", memory_ops_per_miss=0, max_prefetches="1",
        )


@pytest.fixture(scope="module")
def miss_trace():
    runner = Runner(cache=MissStreamCache())
    return runner.miss_stream("galgel", scale=SCALE)


class TestResolution:
    def test_engine_names(self):
        assert ENGINES == ("auto", "reference", "fast", "batch")

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            resolve_engine(create_prefetcher("DP"), "warp")

    def test_auto_prefers_fast_for_fresh_builtin(self):
        for name in ("none", "SP", "SP-adaptive", "ASP", "MP", "RP",
                     "DP", "DP-PC", "DP-2"):
            assert resolve_engine(create_prefetcher(name), "auto") == "fast"

    def test_auto_falls_back_for_subclasses(self):
        custom = _CustomPrefetcher()
        assert not supports(custom)
        assert resolve_engine(custom, "auto") == "reference"

    def test_auto_keeps_fast_for_trained_instances(self, miss_trace):
        """Warm-start: trained state no longer forces the reference
        engine — the fast engine restores it into its own tables."""
        prefetcher = create_prefetcher("DP", rows=64)
        replay_prefetcher(miss_trace, prefetcher)
        assert not is_fresh(prefetcher)
        assert fast_preferred(prefetcher)
        assert resolve_engine(prefetcher, "auto") == "fast"

    def test_history_only_state_stays_on_fast_path(self):
        """One miss leaves DP's table empty and counters at zero, but
        its distance history is trained — the fast engine seeds that
        history too, so auto keeps the fast path."""
        prefetcher = create_prefetcher("DP", rows=64)
        prefetcher.on_miss(0, 100, -1, False)
        assert prefetcher.prefetches_issued == 0
        assert len(prefetcher.table) == 0
        assert prefetcher.has_prediction_state()
        assert not is_fresh(prefetcher)
        assert resolve_engine(prefetcher, "auto") == "fast"

    def test_flush_restores_freshness_for_on_chip_state(self):
        """flush() drops on-chip state, so a flushed mechanism is fresh
        again — except RP, whose stack lives in the page table."""
        for name in ("SP-adaptive", "ASP", "MP", "DP", "DP-PC", "DP-2"):
            prefetcher = create_prefetcher(name, rows=64)
            for page in (7, 9, 12, 14):
                prefetcher.on_miss(0, page, -1, False)
            prefetcher.flush()
            prefetcher.reset_stats()
            assert is_fresh(prefetcher), name
        recency = create_prefetcher("RP")
        recency.on_miss(0, 7, 3, False)
        recency.flush()
        recency.reset_stats()
        assert not is_fresh(recency)

    def test_forced_fast_continues_trained_instances(self, miss_trace):
        """A second replay on a trained instance matches the reference
        engine run for run: same stats, same canonical state."""
        from repro.ckpt import snapshot_prefetcher

        fast_p = create_prefetcher("DP", rows=64)
        ref_p = create_prefetcher("DP", rows=64)
        replay_prefetcher(miss_trace, fast_p)
        replay_prefetcher(miss_trace, ref_p)
        again_fast = replay_fast(miss_trace, fast_p)
        again_ref = replay_prefetcher(miss_trace, ref_p)
        assert again_fast == again_ref
        assert (
            snapshot_prefetcher(fast_p).digest()
            == snapshot_prefetcher(ref_p).digest()
        )

    def test_forced_fast_rejects_unsupported_mechanism(self, miss_trace):
        with pytest.raises(ConfigurationError, match="no replay loop"):
            replay_fast(miss_trace, _CustomPrefetcher())

    def test_fast_engine_trains_the_instance_like_reference(self, miss_trace):
        from repro.ckpt import snapshot_prefetcher

        fast_p = create_prefetcher("DP", rows=64)
        ref_p = create_prefetcher("DP", rows=64)
        replay_fast(miss_trace, fast_p)
        replay_prefetcher(miss_trace, ref_p)
        assert fast_p.prefetches_issued == ref_p.prefetches_issued
        assert len(fast_p.table) == len(ref_p.table)
        assert not is_fresh(fast_p)
        assert (
            snapshot_prefetcher(fast_p).digest()
            == snapshot_prefetcher(ref_p).digest()
        )

    def test_replay_dispatch_matches_both_engines(self, miss_trace):
        via_engine = replay(miss_trace, create_prefetcher("DP"), engine="reference")
        direct = replay_prefetcher(miss_trace, create_prefetcher("DP"))
        assert via_engine == direct
        fast = replay(miss_trace, create_prefetcher("DP"), engine="fast")
        assert fast == direct


class TestRunSpecEngineField:
    def test_default_is_auto(self):
        assert RunSpec.of("galgel", "DP", scale=SCALE).engine == "auto"

    def test_invalid_engine_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            RunSpec.of("galgel", "DP", scale=SCALE, engine="warp")

    def test_engine_excluded_from_identity(self):
        base = RunSpec.of("galgel", "DP", scale=SCALE)
        for engine in ("reference", "fast"):
            derived = base.derive(engine=engine)
            assert derived.key() == base.key()
            assert derived.canonical() == base.canonical()
            assert derived.stream_key() == base.stream_key()

    def test_runner_rows_identical_across_engines(self):
        runner = Runner(cache=MissStreamCache())
        base = [
            RunSpec.of("galgel", mech, scale=SCALE)
            for mech in ("DP", "RP", "ASP", "MP", "SP")
        ]
        reference = runner.run([s.derive(engine="reference") for s in base])
        fast = runner.run([s.derive(engine="fast") for s in base])
        auto = runner.run(base)
        assert reference.to_json() == fast.to_json() == auto.to_json()


class TestWrapperThreading:
    def test_evaluate_engine_param(self):
        trace = get_trace("galgel", SCALE)
        reference = evaluate(trace, create_prefetcher("DP"))
        fast = evaluate(trace, create_prefetcher("DP"), engine="fast")
        auto = evaluate(trace, create_prefetcher("DP"), engine="auto")
        assert reference == fast == auto

    def test_simulate_engine_param(self):
        trace = get_trace("eon", SCALE)
        online = simulate(trace, create_prefetcher("DP"))
        fast = simulate(trace, create_prefetcher("DP"), engine="fast")
        assert online == fast

    def test_experiment_context_engine_threading(self):
        from repro.analysis.experiments import ExperimentContext

        reference = ExperimentContext(scale=SCALE, engine="reference")
        fast = ExperimentContext(scale=SCALE, engine="fast")
        assert reference.spec("galgel", "DP").engine == "reference"
        assert fast.spec("galgel", "DP").engine == "fast"
        ref_fig = reference.run_figure(["galgel"], None)
        fast_fig = fast.run_figure(["galgel"], None)
        assert ref_fig == fast_fig

    def test_cli_engine_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "--app", "galgel", "--mechanism", "DP",
                     "--scale", str(SCALE), "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert main(["run", "--app", "galgel", "--mechanism", "DP",
                     "--scale", str(SCALE), "--engine", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert fast_out == reference_out
        assert "acc=" in fast_out
