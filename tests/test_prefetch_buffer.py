"""Unit and property tests for the prefetch buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tlb.prefetch_buffer import PrefetchBuffer


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            PrefetchBuffer(0)

    def test_hit_removes_entry(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(10)
        assert buffer.lookup_remove(10)
        assert 10 not in buffer
        # A second lookup for the same page now misses.
        assert not buffer.lookup_remove(10)
        assert buffer.hits == 1
        assert buffer.lookups == 2

    def test_lru_eviction_counts_unused(self):
        buffer = PrefetchBuffer(2)
        buffer.insert(1)
        buffer.insert(2)
        buffer.insert(3)  # evicts 1, never used
        assert 1 not in buffer
        assert buffer.evicted_unused == 1

    def test_reinsert_refreshes_lru(self):
        buffer = PrefetchBuffer(2)
        buffer.insert(1)
        buffer.insert(2)
        buffer.insert(1)  # refresh: 2 becomes LRU
        assert buffer.refreshed == 1
        buffer.insert(3)
        assert 2 not in buffer
        assert 1 in buffer

    def test_flush_counts_as_unused(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(1)
        buffer.insert(2)
        assert buffer.flush() == 2
        assert buffer.evicted_unused == 2
        assert len(buffer) == 0

    def test_hit_rate(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(1)
        buffer.lookup_remove(1)
        buffer.lookup_remove(2)
        assert buffer.hit_rate == pytest.approx(0.5)

    def test_resident_pages_lru_first(self):
        buffer = PrefetchBuffer(3)
        for page in (5, 6, 7):
            buffer.insert(page)
        buffer.insert(5)  # refresh 5 to MRU
        assert buffer.resident_pages() == [6, 7, 5]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=15)),
        min_size=1,
        max_size=300,
    ),
    capacity=st.sampled_from([1, 2, 4, 8]),
)
def test_buffer_matches_reference_model(ops, capacity):
    """Property: buffer == LRU dict with remove-on-hit semantics."""
    buffer = PrefetchBuffer(capacity)
    model: list[int] = []  # LRU first
    for is_insert, page in ops:
        if is_insert:
            buffer.insert(page)
            if page in model:
                model.remove(page)
            elif len(model) >= capacity:
                model.pop(0)
            model.append(page)
        else:
            hit = buffer.lookup_remove(page)
            assert hit == (page in model)
            if hit:
                model.remove(page)
    assert buffer.resident_pages() == model


@settings(max_examples=40, deadline=None)
@given(pages=st.lists(st.integers(min_value=0, max_value=50), max_size=200))
def test_buffer_never_exceeds_capacity(pages):
    buffer = PrefetchBuffer(4)
    for page in pages:
        buffer.insert(page)
        assert len(buffer) <= 4
