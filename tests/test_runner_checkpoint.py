"""Runner ``checkpoint_every``: suspendable runs, byte-identical rows.

A checkpointed run must equal a plain run exactly; a run killed
mid-stream must resume from its bookmark (not restart) and still
produce the identical row; the bookmark must be gone once the row is
complete.
"""

import pytest

import repro.ckpt
from repro.ckpt import CheckpointManager, ReplaySession
from repro.errors import ConfigurationError
from repro.run import MissStreamCache, Runner, RunSpec
from repro.store import ExperimentStore

SCALE = 0.02


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "store")


def _spec(mechanism="DP", **params):
    return RunSpec.of("galgel", mechanism, scale=SCALE, **params)


def test_checkpoint_every_requires_a_store():
    with pytest.raises(ConfigurationError, match="checkpoint_every"):
        Runner(checkpoint_every=100)


def test_checkpointed_row_equals_plain_row(store):
    plain = Runner(cache=MissStreamCache()).run([_spec()])
    checkpointed = Runner(
        cache=MissStreamCache(), store=store, checkpoint_every=500
    ).run([_spec()])
    assert checkpointed.to_json() == plain.to_json()


def test_completion_clears_the_bookmark(store):
    spec = _spec()
    Runner(cache=MissStreamCache(), store=store, checkpoint_every=500).run_one(spec)
    assert CheckpointManager(store).load_continuation(spec.key()) is None


def test_killed_run_resumes_from_its_bookmark(store, monkeypatch):
    """Crash after two chunks; the retry must start at the bookmark
    offset and produce the identical row."""
    spec = _spec()
    plain = Runner(cache=MissStreamCache()).run([spec])

    class _Crash(Exception):
        pass

    chunk_log = []
    real_advance = ReplaySession.advance

    def crashy_advance(self, count=None):
        chunk_log.append(self.offset)
        if len(chunk_log) == 3:
            raise _Crash()  # the "SIGKILL": bookmark for chunk 2 is on disk
        return real_advance(self, count)

    monkeypatch.setattr(ReplaySession, "advance", crashy_advance)
    runner = Runner(cache=MissStreamCache(), store=store, checkpoint_every=700)
    with pytest.raises(_Crash):
        runner.run_one(spec)
    record, _ = CheckpointManager(store).load_continuation(spec.key())
    assert record["stream_offset"] == 1400
    assert record["spec_key"] == spec.key()

    monkeypatch.setattr(ReplaySession, "advance", real_advance)
    resume_offsets = []
    real_resume = ReplaySession.resume.__func__

    def spying_resume(cls, snap, miss_trace, prefetcher):
        resume_offsets.append(snap.offset)
        return real_resume(cls, snap, miss_trace, prefetcher)

    monkeypatch.setattr(
        ReplaySession, "resume", classmethod(spying_resume)
    )
    retried = runner.run_one(spec)
    assert resume_offsets == [1400]  # resumed, not restarted
    assert retried == plain[0]
    assert CheckpointManager(store).load_continuation(spec.key()) is None


def test_gc_lost_bookmark_restarts_cleanly(store):
    """Losing a checkpoint blob to GC is never an error: the run just
    starts over and the row is still identical."""
    spec = _spec()
    plain = Runner(cache=MissStreamCache()).run([spec])
    runner = Runner(cache=MissStreamCache(), store=store, checkpoint_every=600)
    manager = CheckpointManager(store)

    # Leave a bookmark, then lose its blob.
    stream = runner.miss_stream_for(spec)
    session = ReplaySession(stream, spec.build_prefetcher())
    session.advance(900)
    record = manager.save_continuation(spec.key(), session.offset, session.snapshot())
    store.delete_ckpt(record["state_digest"])

    assert runner.run_one(spec) == plain[0]
    assert manager.load_continuation(spec.key()) is None


def test_checkpointed_batch_still_deduplicates_via_store(store):
    """checkpoint_every composes with the store's result cache: the
    second run comes back without replaying."""
    runner = Runner(cache=MissStreamCache(), store=store, checkpoint_every=500)
    first = runner.run([_spec()])
    probes_before = store.stats()["result_hits"]
    second = runner.run([_spec()])
    assert second.to_json() == first.to_json()
    assert store.stats()["result_hits"] == probes_before + 1
