"""Unit tests for the prefetcher factory."""

import pytest

from repro.core.distance import DistancePrefetcher
from repro.errors import UnknownPrefetcherError
from repro.prefetch.factory import (
    PREFETCHER_NAMES,
    create_prefetcher,
    default_prefetcher_suite,
)
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stride import ArbitraryStridePrefetcher


class TestFactory:
    def test_all_registered_names_buildable(self):
        for name in PREFETCHER_NAMES:
            prefetcher = create_prefetcher(name)
            assert prefetcher is not None

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(UnknownPrefetcherError) as excinfo:
            create_prefetcher("bogus")
        assert "bogus" in str(excinfo.value)
        assert "DP" in str(excinfo.value)

    def test_parameters_forwarded(self):
        dp = create_prefetcher("DP", rows=64, ways=4, slots=6)
        assert isinstance(dp, DistancePrefetcher)
        assert dp.table.rows == 64
        assert dp.table.ways == 4
        assert dp.slots == 6

    def test_irrelevant_parameters_ignored(self):
        sp = create_prefetcher("SP", rows=1024, slots=8)
        assert isinstance(sp, SequentialPrefetcher)
        assert sp.degree == 1

    def test_rp_variant(self):
        rp = create_prefetcher("RP", variant_three=True)
        assert isinstance(rp, RecencyPrefetcher)
        assert rp.variant_three

    def test_none_builds_null(self):
        assert isinstance(create_prefetcher("none"), NullPrefetcher)

    def test_default_suite_composition(self):
        suite = default_prefetcher_suite(rows=128)
        types = [type(p) for p in suite]
        assert types == [
            RecencyPrefetcher,
            MarkovPrefetcher,
            DistancePrefetcher,
            ArbitraryStridePrefetcher,
        ]
        assert suite[1].table.rows == 128
        assert suite[2].table.rows == 128
