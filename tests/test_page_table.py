"""Unit and property tests for the page table and RP's recency stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb.page_table import PageTable, RecencyStack


class TestPageTable:
    def test_entry_created_on_first_touch(self):
        table = PageTable()
        assert 5 not in table
        pte = table.entry(5)
        assert pte.page == 5
        assert 5 in table
        assert table.entry(5) is pte
        assert len(table) == 1
        assert table.rp_storage_entries() == 1


class TestRecencyStack:
    def test_push_and_walk(self):
        stack = RecencyStack(PageTable())
        for page in (1, 2, 3):
            stack.push_top(page)
        assert stack.top == 3
        assert stack.walk() == [3, 2, 1]
        assert len(stack) == 3

    def test_push_costs_two_writes(self):
        stack = RecencyStack(PageTable())
        stack.push_top(1)
        assert stack.pointer_writes == 2

    def test_remove_middle_relinks(self):
        stack = RecencyStack(PageTable())
        for page in (1, 2, 3):
            stack.push_top(page)
        assert stack.remove(2)
        assert stack.walk() == [3, 1]
        # push 3 entries (6 writes) + remove (2 writes)
        assert stack.pointer_writes == 8

    def test_remove_top_updates_top(self):
        stack = RecencyStack(PageTable())
        stack.push_top(1)
        stack.push_top(2)
        assert stack.remove(2)
        assert stack.top == 1
        assert stack.walk() == [1]

    def test_remove_absent_is_noop(self):
        stack = RecencyStack(PageTable())
        stack.push_top(1)
        before = stack.pointer_writes
        assert not stack.remove(99)
        assert stack.pointer_writes == before

    def test_neighbors(self):
        stack = RecencyStack(PageTable())
        for page in (1, 2, 3):
            stack.push_top(page)
        prev_page, next_page = stack.neighbors(2)
        assert prev_page == 3  # pushed after 2 (above on the stack)
        assert next_page == 1  # pushed before 2 (below on the stack)
        assert stack.neighbors(42) == (None, None)

    def test_repush_relocates_to_top(self):
        stack = RecencyStack(PageTable())
        for page in (1, 2, 3):
            stack.push_top(page)
        stack.push_top(1)
        assert stack.walk() == [1, 3, 2]

    def test_contains(self):
        table = PageTable()
        stack = RecencyStack(table)
        stack.push_top(7)
        assert 7 in stack
        stack.remove(7)
        assert 7 not in stack


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=12)),
        min_size=1,
        max_size=200,
    )
)
def test_stack_matches_list_model(ops):
    """Property: the linked stack behaves like a plain list model."""
    stack = RecencyStack(PageTable())
    model: list[int] = []  # top first
    for is_push, page in ops:
        if is_push:
            stack.push_top(page)
            if page in model:
                model.remove(page)
            model.insert(0, page)
        else:
            removed = stack.remove(page)
            assert removed == (page in model)
            if removed:
                model.remove(page)
        assert stack.walk() == model
        assert stack.top == (model[0] if model else None)
