"""Tests for the workload claim validator."""

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.workloads.registry import all_app_names
from repro.workloads.validation import (
    CLAIM_GROUPS,
    ValidationResult,
    group_of,
    render_report,
    validate_all,
    validate_app,
)


class TestGroupAssignments:
    def test_every_app_has_a_group(self):
        for app in all_app_names():
            assert group_of(app) in CLAIM_GROUPS

    def test_group_lists_only_contain_known_apps(self):
        known = set(all_app_names())
        for group, (_, apps) in CLAIM_GROUPS.items():
            unknown = set(apps) - known
            assert not unknown, (group, unknown)

    def test_group_lists_cover_all_apps(self):
        grouped = {
            app for _, apps in CLAIM_GROUPS.values() for app in apps
        }
        assert grouped == set(all_app_names())

    def test_no_app_in_two_groups(self):
        seen: dict[str, str] = {}
        for group, (_, apps) in CLAIM_GROUPS.items():
            for app in apps:
                assert app not in seen, (app, group, seen[app])
                seen[app] = group

    def test_expected_assignments(self):
        assert group_of("galgel") == "strided-repeated"
        assert group_of("parser") == "alternation"
        assert group_of("swim") == "distance"
        assert group_of("fma3d") == "nobody"
        assert group_of("bzip2") == "mixed"


class TestValidation:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(scale=0.15)

    def test_validate_single_app(self, context):
        result = validate_app("galgel", context)
        assert isinstance(result, ValidationResult)
        assert result.passed, result.failures
        assert set(result.accuracies) == {"RP", "MP", "DP", "ASP"}

    def test_validate_subset(self, context):
        results = validate_all(context, apps=["eon", "swim", "parser"])
        assert [r.app for r in results] == ["eon", "swim", "parser"]
        assert all(r.passed for r in results), [
            (r.app, r.failures) for r in results if not r.passed
        ]

    def test_render_report_mentions_status(self, context):
        results = validate_all(context, apps=["eon"])
        text = render_report(results)
        assert "1 passed" in text
        assert "eon" in text

    def test_render_report_shows_failures(self):
        fake = ValidationResult(
            app="x", group="nobody",
            accuracies={"RP": 0.9, "MP": 0.0, "DP": 0.0, "ASP": 0.0},
            failures=("expected no mechanism to predict",),
        )
        text = render_report([fake])
        assert "FAIL" in text
        assert "expected no mechanism" in text
