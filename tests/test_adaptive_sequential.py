"""Unit tests for adaptive sequential prefetching (Dahlgren–Stenström)."""

import pytest

from repro.errors import ConfigurationError
from repro.prefetch.adaptive_sequential import AdaptiveSequentialPrefetcher
from repro.prefetch.base import NO_EVICTION


def _run_window(prefetcher, pb_hit: bool, window: int) -> None:
    for i in range(window):
        prefetcher.on_miss(0, 1000 + i, NO_EVICTION, pb_hit)


class TestAdaptation:
    def test_degree_doubles_on_success(self):
        asp = AdaptiveSequentialPrefetcher(max_degree=8, window=16)
        assert asp.degree == 1
        _run_window(asp, pb_hit=True, window=16)
        assert asp.degree == 2
        _run_window(asp, pb_hit=True, window=16)
        assert asp.degree == 4

    def test_degree_capped(self):
        asp = AdaptiveSequentialPrefetcher(max_degree=4, window=8)
        for _ in range(6):
            _run_window(asp, pb_hit=True, window=8)
        assert asp.degree == 4

    def test_degree_halves_on_failure(self):
        asp = AdaptiveSequentialPrefetcher(max_degree=8, window=16)
        _run_window(asp, pb_hit=True, window=16)
        _run_window(asp, pb_hit=True, window=16)
        assert asp.degree == 4
        _run_window(asp, pb_hit=False, window=16)
        assert asp.degree == 2

    def test_degree_floor_is_one(self):
        asp = AdaptiveSequentialPrefetcher(max_degree=8, window=8)
        for _ in range(4):
            _run_window(asp, pb_hit=False, window=8)
        assert asp.degree == 1

    def test_moderate_hit_rate_keeps_degree(self):
        asp = AdaptiveSequentialPrefetcher(
            max_degree=8, window=10, raise_above=0.8, lower_below=0.2
        )
        for i in range(10):
            asp.on_miss(0, i, NO_EVICTION, pb_hit=(i % 2 == 0))
        assert asp.degree == 1

    def test_prefetches_match_degree(self):
        asp = AdaptiveSequentialPrefetcher(max_degree=8, window=4)
        _run_window(asp, pb_hit=True, window=4)
        assert asp.on_miss(0, 100, NO_EVICTION, True) == [101, 102]

    def test_flush_resets(self):
        asp = AdaptiveSequentialPrefetcher(max_degree=8, window=4)
        _run_window(asp, pb_hit=True, window=4)
        asp.flush()
        assert asp.degree == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_degree": 0},
            {"window": 0},
            {"raise_above": 0.1, "lower_below": 0.5},
            {"raise_above": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveSequentialPrefetcher(**kwargs)

    def test_label_and_hardware(self):
        asp = AdaptiveSequentialPrefetcher(max_degree=8)
        assert asp.label == "ASP-seq,k<=8"
        assert asp.describe_hardware().max_prefetches == "8"
