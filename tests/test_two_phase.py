"""Tests for the two-phase simulator, including the key equivalences.

Two properties anchor the whole evaluation methodology:

1. **Miss-stream invariance** — the TLB miss stream is identical under
   every prefetch mechanism (and none), because a buffer hit fills the
   TLB exactly like a demand fetch. This is what the paper relies on
   when it states prefetching "can thus not increase the miss rates of
   the original TLB".
2. **Two-phase == online** — filtering the TLB once and replaying the
   miss stream per mechanism gives byte-identical statistics to the
   full online pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.trace import NO_EVICTION, ReferenceTrace
from repro.prefetch.factory import PREFETCHER_NAMES, create_prefetcher
from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.functional import simulate
from repro.sim.two_phase import evaluate, filter_tlb, replay_prefetcher

from conftest import make_trace


class TestFilterTLB:
    def test_records_misses_in_order(self):
        trace = make_trace([1, 2, 1, 3], counts=[1, 1, 2, 1])
        miss_trace = filter_tlb(trace, TLBConfig(entries=4))
        assert miss_trace.pages.tolist() == [1, 2, 3]
        assert miss_trace.ref_index.tolist() == [0, 1, 4]
        assert miss_trace.total_references == 5

    def test_records_evictions(self):
        trace = make_trace([1, 2, 3])
        miss_trace = filter_tlb(trace, TLBConfig(entries=2))
        assert miss_trace.evicted.tolist() == [NO_EVICTION, NO_EVICTION, 1]

    def test_warmup_fraction_marks_leading_misses(self):
        trace = make_trace([1, 2, 3, 4], counts=[10, 10, 10, 10])
        miss_trace = filter_tlb(trace, TLBConfig(entries=8), warmup_fraction=0.5)
        # Misses at ref 0, 10, 20, 30; warm-up limit = 20 references.
        assert miss_trace.warmup_misses == 2
        assert miss_trace.measured_misses == 2

    def test_run_tail_never_misses(self):
        trace = make_trace([1] * 5, counts=[100] * 5)
        miss_trace = filter_tlb(trace, TLBConfig(entries=2))
        assert miss_trace.num_misses == 1
        assert miss_trace.miss_rate == pytest.approx(1 / 500)


@st.composite
def small_traces(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    pages = draw(
        st.lists(
            st.integers(min_value=0, max_value=24), min_size=n, max_size=n
        )
    )
    pcs = draw(
        st.lists(st.integers(min_value=0, max_value=6), min_size=n, max_size=n)
    )
    counts = draw(
        st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n)
    )
    return ReferenceTrace(pcs, pages, counts, name="hyp")


@settings(max_examples=40, deadline=None)
@given(trace=small_traces(), mechanism=st.sampled_from(sorted(PREFETCHER_NAMES)))
def test_miss_stream_invariant_under_prefetching(trace, mechanism):
    """Property 1: the miss stream does not depend on the mechanism."""
    config = SimulationConfig(tlb=TLBConfig(entries=8), buffer_entries=4)
    baseline = filter_tlb(trace, config.tlb)
    stats = simulate(trace, create_prefetcher(mechanism, rows=16), config)
    assert stats.tlb_misses == baseline.num_misses
    assert stats.total_references == trace.total_references


@settings(max_examples=40, deadline=None)
@given(trace=small_traces(), mechanism=st.sampled_from(sorted(PREFETCHER_NAMES)))
def test_two_phase_equals_online(trace, mechanism):
    """Property 2: replaying the filtered miss stream is exactly the
    online pipeline, for every mechanism."""
    config = SimulationConfig(tlb=TLBConfig(entries=8), buffer_entries=4)
    online = simulate(trace, create_prefetcher(mechanism, rows=16), config)
    two_phase = evaluate(trace, create_prefetcher(mechanism, rows=16), config)
    assert two_phase.tlb_misses == online.tlb_misses
    assert two_phase.pb_hits == online.pb_hits
    assert two_phase.prefetches_issued == online.prefetches_issued
    assert two_phase.buffer_inserted == online.buffer_inserted
    assert two_phase.buffer_refreshed == online.buffer_refreshed
    assert two_phase.buffer_evicted_unused == online.buffer_evicted_unused
    assert two_phase.overhead_memory_ops == online.overhead_memory_ops
    assert two_phase.prediction_accuracy == pytest.approx(online.prediction_accuracy)


@settings(max_examples=25, deadline=None)
@given(trace=small_traces())
def test_two_phase_equals_online_with_warmup(trace):
    config = SimulationConfig(
        tlb=TLBConfig(entries=8), buffer_entries=4, warmup_fraction=0.3
    )
    online = simulate(trace, create_prefetcher("DP", rows=16), config)
    two_phase = evaluate(trace, create_prefetcher("DP", rows=16), config)
    assert two_phase.measured_misses == online.measured_misses
    assert two_phase.pb_hits == online.pb_hits


class TestReplay:
    def test_max_prefetches_clamp(self):
        trace = make_trace(list(range(20)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=4))
        unclamped = replay_prefetcher(
            miss_trace, create_prefetcher("SP", degree=4), buffer_entries=8
        )
        clamped = replay_prefetcher(
            miss_trace,
            create_prefetcher("SP", degree=4),
            buffer_entries=8,
            max_prefetches_per_miss=1,
        )
        assert clamped.buffer_inserted < unclamped.buffer_inserted

    def test_accuracy_on_sequential_scan(self):
        """A long sequential scan through a small TLB: every miss after
        DP warms up is covered."""
        trace = make_trace(list(range(200)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        stats = replay_prefetcher(miss_trace, create_prefetcher("DP", rows=16))
        assert stats.prediction_accuracy > 0.97

    def test_null_prefetcher_scores_zero(self):
        trace = make_trace(list(range(50)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        stats = replay_prefetcher(miss_trace, create_prefetcher("none"))
        assert stats.pb_hits == 0
        assert stats.prefetches_issued == 0
        assert stats.prediction_accuracy == 0.0


class TestReusedMechanismCounters:
    """Mechanism counters are cumulative over the instance's lifetime;
    per-run stats must report deltas, or reusing one instance across
    runs double-counts the earlier runs' activity."""

    def test_replay_reports_per_run_deltas(self):
        trace = make_trace(list(range(100)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        prefetcher = create_prefetcher("SP", degree=2)
        first = replay_prefetcher(miss_trace, prefetcher)
        second = replay_prefetcher(miss_trace, prefetcher)
        assert first.prefetches_issued > 0
        # The instance's cumulative total is exactly the sum of the
        # per-run reports — nothing was counted twice.
        assert (
            prefetcher.prefetches_issued
            == first.prefetches_issued + second.prefetches_issued
        )

    def test_replay_overhead_ops_are_deltas(self):
        trace = make_trace(list(range(100)))
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        prefetcher = create_prefetcher("RP")  # 4 pointer writes per miss
        first = replay_prefetcher(miss_trace, prefetcher)
        second = replay_prefetcher(miss_trace, prefetcher)
        assert first.overhead_memory_ops > 0
        assert (
            prefetcher.overhead_ops_total
            == first.overhead_memory_ops + second.overhead_memory_ops
        )

    def test_online_simulate_reports_per_run_deltas(self):
        trace = make_trace(list(range(100)))
        config = SimulationConfig(tlb=TLBConfig(entries=8))
        prefetcher = create_prefetcher("SP", degree=2)
        first = simulate(trace, prefetcher, config)
        second = simulate(trace, prefetcher, config)
        assert first.prefetches_issued > 0
        assert (
            prefetcher.prefetches_issued
            == first.prefetches_issued + second.prefetches_issued
        )
