"""Unit tests for tagged Sequential Prefetching (SP)."""

import pytest

from repro.prefetch.base import NO_EVICTION
from repro.prefetch.sequential import SequentialPrefetcher


class TestSequential:
    def test_prefetches_next_page_on_every_miss(self):
        sp = SequentialPrefetcher()
        assert sp.on_miss(0, 10, NO_EVICTION, False) == [11]
        assert sp.on_miss(0, 42, NO_EVICTION, True) == [43]

    def test_degree(self):
        sp = SequentialPrefetcher(degree=3)
        assert sp.on_miss(0, 10, NO_EVICTION, False) == [11, 12, 13]

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            SequentialPrefetcher(degree=0)

    def test_statistics(self):
        sp = SequentialPrefetcher()
        sp.on_miss(0, 1, NO_EVICTION, False)
        sp.on_miss(0, 2, NO_EVICTION, False)
        assert sp.prefetches_issued == 2
        assert sp.overhead_ops_total == 0
        assert sp.last_overhead_ops == 0

    def test_labels(self):
        assert SequentialPrefetcher().label == "SP"
        assert SequentialPrefetcher(degree=2).label == "SP,k=2"

    def test_hardware_description(self):
        desc = SequentialPrefetcher().describe_hardware()
        assert desc.memory_ops_per_miss == 0
        assert desc.location == "On-Chip"
