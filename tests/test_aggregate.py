"""Tests for per-suite / per-class aggregation."""

import pytest

from repro.analysis.aggregate import (
    assert_class_expectations,
    behavior_class_counts,
    behavior_summary,
    dominant_mechanism,
    render_summary,
    suite_summary,
)
from repro.prefetch.factory import create_prefetcher
from repro.sim.two_phase import filter_tlb, replay_prefetcher
from repro.workloads.composer import BehaviorClass
from repro.workloads.registry import get_trace


@pytest.fixture(scope="module")
def sample_runs():
    runs = []
    for app in ("gzip", "galgel", "fma3d", "adpcm-enc", "gsm-enc"):
        miss_trace = filter_tlb(get_trace(app, 0.05))
        for mechanism in ("DP", "RP", "ASP", "MP"):
            runs.append(
                replay_prefetcher(miss_trace, create_prefetcher(mechanism, rows=256))
            )
    return runs


class TestSuiteSummary:
    def test_groups_by_suite(self, sample_runs):
        summary = suite_summary(sample_runs)
        assert set(summary) == {"spec2000", "mediabench"}
        assert set(summary["spec2000"]) == {"DP", "RP", "ASP", "MP"}

    def test_values_are_averages(self, sample_runs):
        summary = suite_summary(sample_runs)
        for per_mechanism in summary.values():
            for value in per_mechanism.values():
                assert 0.0 <= value <= 1.0


class TestBehaviorSummary:
    def test_groups_by_class(self, sample_runs):
        summary = behavior_summary(sample_runs)
        assert BehaviorClass.STRIDED_ONE_TOUCH.value in summary
        assert BehaviorClass.STRIDED_REPEATED.value in summary
        assert BehaviorClass.IRREGULAR.value in summary

    def test_class_expectations_hold(self, sample_runs):
        summary = behavior_summary(sample_runs)
        assert assert_class_expectations(summary) == []

    def test_expectations_detect_violations(self):
        summary = {
            BehaviorClass.IRREGULAR.value: {
                "DP": 0.9, "RP": 0.0, "ASP": 0.0, "MP": 0.0,
            }
        }
        assert assert_class_expectations(summary)


class TestHelpers:
    def test_dominant_mechanism(self, sample_runs):
        summary = behavior_summary(sample_runs)
        winners = dominant_mechanism(summary)
        assert winners[BehaviorClass.STRIDED_ONE_TOUCH.value] == "DP"

    def test_render(self, sample_runs):
        text = render_summary(suite_summary(sample_runs))
        assert "spec2000" in text
        assert "DP" in text

    def test_class_counts_cover_all_apps(self):
        counts = behavior_class_counts()
        assert sum(counts.values()) == 56
        assert counts[BehaviorClass.LOW_MISS.value] >= 4
