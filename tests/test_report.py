"""Tests for the one-shot Markdown experiment report."""

from repro.analysis.experiments import ExperimentContext
from repro.analysis.report import generate_report, write_report


class TestGenerateReport:
    def test_tables_only_report(self):
        text = generate_report(
            context=ExperimentContext(scale=0.05), include_figures=False
        )
        assert "# TLB prefetching reproduction" in text
        assert "## Table 1" in text
        assert "## Table 2" in text
        assert "## Table 3" in text
        assert "## Figure 7" not in text
        assert "Shape check:" in text
        # Paper reference numbers are embedded for comparison.
        assert "0.43" in text  # paper DP average
        assert "1.09" in text  # paper mcf RP cycles

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", scale=0.05)
        content = path.read_text()
        assert content.startswith("# TLB prefetching reproduction")
        # Figures included by default.
        assert "## Figure 9" in content
        assert "galgel" in content
