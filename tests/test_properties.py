"""Cross-cutting property tests for the simulation contracts.

These pin the invariants the whole methodology rests on, beyond the
module-level tests:

- **RLE exactness** — re-encoding a trace's runs (splitting or merging
  consecutive same-page runs) never changes the TLB miss stream.
- **Oracle dominance** — no mechanism beats future knowledge under the
  same buffer and issue budget.
- **Rescale conservation** — page-size rescaling preserves reference
  counts and is the identity at 4 KiB.
- **Cycle-model sanity** — the no-prefetch baseline equals base cycles
  plus exposed penalties for any miss spacing.
- **Structure invariants** — the core state machines the engines rest
  on (:class:`PredictionTable`, :class:`TLB`, :class:`PrefetchBuffer`,
  the DP-2 key packing) hold their capacity and exact-LRU contracts
  under arbitrary seeded operation sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance_pair import DistancePairPrefetcher, pack_distance_pair
from repro.core.prediction_table import PredictionTable
from repro.mem.trace import ReferenceTrace
from repro.prefetch.factory import PREFETCHER_NAMES, create_prefetcher
from repro.prefetch.null import NullPrefetcher
from repro.sim.config import TLBConfig
from repro.sim.cycle import CycleSimConfig, simulate_cycles
from repro.sim.oracle import replay_oracle
from repro.sim.sweep import rescale_trace
from repro.sim.two_phase import filter_tlb, replay_prefetcher
from repro.tlb.prefetch_buffer import PrefetchBuffer
from repro.tlb.tlb import TLB
from repro.cpu.costs import TimingParameters


@st.composite
def rle_traces(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    pages = draw(st.lists(st.integers(0, 20), min_size=n, max_size=n))
    counts = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    return ReferenceTrace([0] * n, pages, counts, name="rle")


def _split_runs(trace: ReferenceTrace, rng: np.random.Generator) -> ReferenceTrace:
    """Re-encode: randomly split runs with count > 1 into two runs."""
    pcs, pages, counts = [], [], []
    for pc, page, count in zip(
        trace.pcs.tolist(), trace.pages.tolist(), trace.counts.tolist()
    ):
        if count > 1 and rng.random() < 0.5:
            left = int(rng.integers(1, count))
            pcs += [pc, pc]
            pages += [page, page]
            counts += [left, count - left]
        else:
            pcs.append(pc)
            pages.append(page)
            counts.append(count)
    return ReferenceTrace(pcs, pages, counts, name=trace.name)


def _merge_runs(trace: ReferenceTrace) -> ReferenceTrace:
    """Re-encode: merge adjacent runs touching the same page."""
    pcs, pages, counts = [], [], []
    for pc, page, count in zip(
        trace.pcs.tolist(), trace.pages.tolist(), trace.counts.tolist()
    ):
        if pages and pages[-1] == page:
            counts[-1] += count
        else:
            pcs.append(pc)
            pages.append(page)
            counts.append(count)
    return ReferenceTrace(pcs, pages, counts, name=trace.name)


@settings(max_examples=50, deadline=None)
@given(trace=rle_traces(), seed=st.integers(0, 2**16))
def test_rle_reencoding_preserves_miss_stream(trace, seed):
    """The RLE contract: any equivalent run encoding of the same
    reference sequence yields the identical miss stream."""
    config = TLBConfig(entries=4)
    reference = filter_tlb(trace, config)
    split = filter_tlb(_split_runs(trace, np.random.default_rng(seed)), config)
    merged = filter_tlb(_merge_runs(trace), config)
    for other in (split, merged):
        assert other.pages.tolist() == reference.pages.tolist()
        assert other.evicted.tolist() == reference.evicted.tolist()
        assert other.total_references == reference.total_references


@settings(max_examples=30, deadline=None)
@given(trace=rle_traces(), mechanism=st.sampled_from(sorted(PREFETCHER_NAMES)))
def test_oracle_dominates_every_mechanism(trace, mechanism):
    miss_trace = filter_tlb(trace, TLBConfig(entries=4))
    ceiling = replay_oracle(
        miss_trace, lookahead=2, buffer_entries=4
    ).prediction_accuracy
    accuracy = replay_prefetcher(
        miss_trace,
        create_prefetcher(mechanism, rows=16),
        buffer_entries=4,
        max_prefetches_per_miss=2,
    ).prediction_accuracy
    assert accuracy <= ceiling + 1e-9


@settings(max_examples=50, deadline=None)
@given(trace=rle_traces(), shift=st.sampled_from([4096, 8192, 16384, 65536]))
def test_rescale_conserves_references(trace, shift):
    rescaled = rescale_trace(trace, shift)
    assert rescaled.total_references == trace.total_references
    if shift == 4096:
        assert rescaled is trace
    else:
        # Page mapping is the exact right shift.
        assert rescaled.pages.max() <= trace.pages.max()


@settings(max_examples=50, deadline=None)
@given(trace=rle_traces())
def test_rescaled_miss_count_never_increases(trace):
    """Bigger pages can only merge footprints: misses cannot grow."""
    config = TLBConfig(entries=4)
    base = filter_tlb(trace, config).num_misses
    bigger = filter_tlb(rescale_trace(trace, 8192), config).num_misses
    assert bigger <= base


@settings(max_examples=30, deadline=None)
@given(
    gaps=st.lists(st.integers(1, 400), min_size=1, max_size=40),
    exposure=st.sampled_from([1.0, 0.5, 2.0 / 3.0]),
)
def test_baseline_cycles_closed_form(gaps, exposure):
    """No-prefetch cycles = base + misses × exposed penalty, exactly,
    for any miss spacing and exposure factor."""
    from repro.mem.trace import MissTrace, NO_EVICTION

    ref_index = np.cumsum([0] + gaps[:-1]).astype(np.int64)
    n = len(gaps)
    miss_trace = MissTrace(
        pcs=np.zeros(n, dtype=np.int64),
        pages=np.arange(n, dtype=np.int64),
        evicted=np.full(n, NO_EVICTION, dtype=np.int64),
        ref_index=ref_index,
        total_references=int(ref_index[-1]) + 10,
        name="t",
    )
    timing = TimingParameters(
        issue_width=1, instructions_per_reference=1.0,
        stall_exposure=exposure, walk_contention=0.0,
    )
    stats = simulate_cycles(miss_trace, NullPrefetcher(), CycleSimConfig(timing=timing))
    expected = miss_trace.total_references * 1.0 + n * exposure * 100
    assert stats.total_cycles == pytest.approx(expected)


@settings(max_examples=25, deadline=None)
@given(trace=rle_traces())
def test_warmup_never_counts_more_hits_than_misses(trace):
    config = TLBConfig(entries=4)
    miss_trace = filter_tlb(trace, config, warmup_fraction=0.4)
    stats = replay_prefetcher(
        miss_trace, create_prefetcher("DP", rows=16), buffer_entries=4
    )
    assert stats.pb_hits <= stats.measured_misses
    assert stats.measured_misses <= stats.tlb_misses


# ---------------------------------------------------------------------------
# Core-structure invariants under randomized seeded operation sequences
# ---------------------------------------------------------------------------


@st.composite
def table_shapes(draw):
    rows = draw(st.sampled_from([4, 8, 16]))
    ways = draw(st.sampled_from([1, 2, 4, 0]))
    return rows, ways


@settings(max_examples=60, deadline=None)
@given(
    shape=table_shapes(),
    keys=st.lists(st.integers(-12, 12), min_size=1, max_size=120),
)
def test_prediction_table_capacity_and_exact_lru(shape, keys):
    """PredictionTable vs a transparent per-set LRU model.

    Invariants: occupancy never exceeds ``rows`` (nor ``ways`` per
    set), every resident key lives in the set it hashes to, and the
    per-set LRU order — observable through :meth:`items` — matches a
    list-based model replaying the same lookup_or_insert sequence.
    """
    rows, ways = shape
    table = PredictionTable(rows, ways)
    effective_ways = rows if ways == 0 else ways
    num_sets = rows // effective_ways
    model = [[] for _ in range(num_sets)]  # per-set key lists, LRU first

    for key in keys:
        payload, allocated = table.lookup_or_insert(key, lambda: object())
        model_set = model[key % num_sets]
        if key in model_set:
            assert not allocated
            model_set.remove(key)
            model_set.append(key)  # promote to MRU
        else:
            assert allocated
            if len(model_set) >= effective_ways:
                model_set.pop(0)  # evict LRU
            model_set.append(key)

        assert len(table) <= rows
        observed = [[] for _ in range(num_sets)]
        for resident_key, _ in table.items():
            observed[table.set_index(resident_key)].append(resident_key)
        assert observed == model
        for table_set in observed:
            assert len(table_set) <= effective_ways

    assert table.lookups == len(keys)
    assert table.tag_hits + table.row_evictions <= len(keys)


@settings(max_examples=60, deadline=None)
@given(
    entries=st.sampled_from([4, 8, 16]),
    ways=st.sampled_from([0, 2, 4]),
    pages=st.lists(st.integers(0, 40), min_size=1, max_size=150),
)
def test_tlb_set_associativity_bounds_and_lru(entries, ways, pages):
    """TLB occupancy bounds per set plus exact LRU vs a model."""
    tlb = TLB(entries=entries, ways=ways)
    effective_ways = entries if ways == 0 else ways
    num_sets = entries // effective_ways
    model = [[] for _ in range(num_sets)]

    for page in pages:
        access = tlb.access(page)
        model_set = model[page % num_sets]
        if access.hit:
            assert page in model_set
            model_set.remove(page)
            model_set.append(page)
            assert access.evicted is None
        else:
            assert page not in model_set
            if len(model_set) >= effective_ways:
                assert access.evicted == model_set.pop(0)
            else:
                assert access.evicted is None
            model_set.append(page)

        assert len(tlb) <= entries
        observed = [[] for _ in range(num_sets)]
        for resident in tlb.resident_pages():
            observed[tlb.set_index(resident)].append(resident)
        assert observed == model

    assert tlb.hits + tlb.misses == len(pages)


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.sampled_from([1, 2, 4, 16]),
    ops=st.lists(
        st.tuples(st.sampled_from(["lookup", "insert", "flush"]), st.integers(0, 25)),
        min_size=1,
        max_size=120,
    ),
)
def test_prefetch_buffer_never_exceeds_capacity(capacity, ops):
    """PrefetchBuffer under arbitrary op sequences: capacity bound,
    counter consistency, and the residency identity
    ``resident == inserted - hits - evicted_unused`` (flushes fold
    into ``evicted_unused``)."""
    buffer = PrefetchBuffer(capacity)
    insert_calls = 0
    for op, page in ops:
        if op == "lookup":
            was_resident = page in buffer
            hit = buffer.lookup_remove(page)
            assert hit == was_resident
            assert page not in buffer  # a hit removes the page
        elif op == "insert":
            insert_calls += 1
            evicted = buffer.insert(page)
            assert page in buffer
            if evicted is not None:
                assert evicted not in buffer
        else:
            dropped = buffer.flush()
            assert dropped <= capacity
            assert len(buffer) == 0
        assert len(buffer) <= capacity
        assert buffer.hits <= buffer.lookups
        assert buffer.inserted + buffer.refreshed == insert_calls
        assert len(buffer) == buffer.inserted - buffer.hits - buffer.evicted_unused


@settings(max_examples=120, deadline=None)
@given(
    first=st.integers(-(2**23), 2**23 - 1),
    second=st.integers(-(2**23), 2**23 - 1),
    other_first=st.integers(-(2**23), 2**23 - 1),
    other_second=st.integers(-(2**23), 2**23 - 1),
)
def test_distance_pair_key_packing_is_injective(first, second, other_first, other_second):
    """DP-2's packed key collides only for identical distance pairs."""
    if (first, second) != (other_first, other_second):
        assert pack_distance_pair(first, second) != pack_distance_pair(
            other_first, other_second
        )
    assert pack_distance_pair(first, second) == pack_distance_pair(first, second)


@settings(max_examples=40, deadline=None)
@given(
    pages=st.lists(st.integers(0, 30), min_size=1, max_size=120),
    rows=st.sampled_from([4, 16]),
    ways=st.sampled_from([1, 2, 0]),
    slots=st.integers(1, 3),
)
def test_distance_pair_prefetcher_table_invariants(pages, rows, ways, slots):
    """DistancePairPrefetcher under random miss streams: table occupancy
    and per-row slot counts stay bounded, and flush() empties on-chip
    state completely."""
    prefetcher = DistancePairPrefetcher(rows=rows, ways=ways, slots=slots)
    for page in pages:
        prefetches = prefetcher.on_miss(0, page, -1, False)
        assert len(prefetches) <= slots
        assert len(prefetcher.table) <= rows
        for _, row in prefetcher.table.items():
            assert len(row) <= slots
    prefetcher.flush()
    assert len(prefetcher.table) == 0
    assert prefetcher.on_miss(0, 5, -1, False) == []  # history gone too
