"""Cross-cutting property tests for the simulation contracts.

These pin the invariants the whole methodology rests on, beyond the
module-level tests:

- **RLE exactness** — re-encoding a trace's runs (splitting or merging
  consecutive same-page runs) never changes the TLB miss stream.
- **Oracle dominance** — no mechanism beats future knowledge under the
  same buffer and issue budget.
- **Rescale conservation** — page-size rescaling preserves reference
  counts and is the identity at 4 KiB.
- **Cycle-model sanity** — the no-prefetch baseline equals base cycles
  plus exposed penalties for any miss spacing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.trace import ReferenceTrace
from repro.prefetch.factory import PREFETCHER_NAMES, create_prefetcher
from repro.prefetch.null import NullPrefetcher
from repro.sim.config import TLBConfig
from repro.sim.cycle import CycleSimConfig, simulate_cycles
from repro.sim.oracle import replay_oracle
from repro.sim.sweep import rescale_trace
from repro.sim.two_phase import filter_tlb, replay_prefetcher
from repro.cpu.costs import TimingParameters


@st.composite
def rle_traces(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    pages = draw(st.lists(st.integers(0, 20), min_size=n, max_size=n))
    counts = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    return ReferenceTrace([0] * n, pages, counts, name="rle")


def _split_runs(trace: ReferenceTrace, rng: np.random.Generator) -> ReferenceTrace:
    """Re-encode: randomly split runs with count > 1 into two runs."""
    pcs, pages, counts = [], [], []
    for pc, page, count in zip(
        trace.pcs.tolist(), trace.pages.tolist(), trace.counts.tolist()
    ):
        if count > 1 and rng.random() < 0.5:
            left = int(rng.integers(1, count))
            pcs += [pc, pc]
            pages += [page, page]
            counts += [left, count - left]
        else:
            pcs.append(pc)
            pages.append(page)
            counts.append(count)
    return ReferenceTrace(pcs, pages, counts, name=trace.name)


def _merge_runs(trace: ReferenceTrace) -> ReferenceTrace:
    """Re-encode: merge adjacent runs touching the same page."""
    pcs, pages, counts = [], [], []
    for pc, page, count in zip(
        trace.pcs.tolist(), trace.pages.tolist(), trace.counts.tolist()
    ):
        if pages and pages[-1] == page:
            counts[-1] += count
        else:
            pcs.append(pc)
            pages.append(page)
            counts.append(count)
    return ReferenceTrace(pcs, pages, counts, name=trace.name)


@settings(max_examples=50, deadline=None)
@given(trace=rle_traces(), seed=st.integers(0, 2**16))
def test_rle_reencoding_preserves_miss_stream(trace, seed):
    """The RLE contract: any equivalent run encoding of the same
    reference sequence yields the identical miss stream."""
    config = TLBConfig(entries=4)
    reference = filter_tlb(trace, config)
    split = filter_tlb(_split_runs(trace, np.random.default_rng(seed)), config)
    merged = filter_tlb(_merge_runs(trace), config)
    for other in (split, merged):
        assert other.pages.tolist() == reference.pages.tolist()
        assert other.evicted.tolist() == reference.evicted.tolist()
        assert other.total_references == reference.total_references


@settings(max_examples=30, deadline=None)
@given(trace=rle_traces(), mechanism=st.sampled_from(sorted(PREFETCHER_NAMES)))
def test_oracle_dominates_every_mechanism(trace, mechanism):
    miss_trace = filter_tlb(trace, TLBConfig(entries=4))
    ceiling = replay_oracle(
        miss_trace, lookahead=2, buffer_entries=4
    ).prediction_accuracy
    accuracy = replay_prefetcher(
        miss_trace,
        create_prefetcher(mechanism, rows=16),
        buffer_entries=4,
        max_prefetches_per_miss=2,
    ).prediction_accuracy
    assert accuracy <= ceiling + 1e-9


@settings(max_examples=50, deadline=None)
@given(trace=rle_traces(), shift=st.sampled_from([4096, 8192, 16384, 65536]))
def test_rescale_conserves_references(trace, shift):
    rescaled = rescale_trace(trace, shift)
    assert rescaled.total_references == trace.total_references
    if shift == 4096:
        assert rescaled is trace
    else:
        # Page mapping is the exact right shift.
        assert rescaled.pages.max() <= trace.pages.max()


@settings(max_examples=50, deadline=None)
@given(trace=rle_traces())
def test_rescaled_miss_count_never_increases(trace):
    """Bigger pages can only merge footprints: misses cannot grow."""
    config = TLBConfig(entries=4)
    base = filter_tlb(trace, config).num_misses
    bigger = filter_tlb(rescale_trace(trace, 8192), config).num_misses
    assert bigger <= base


@settings(max_examples=30, deadline=None)
@given(
    gaps=st.lists(st.integers(1, 400), min_size=1, max_size=40),
    exposure=st.sampled_from([1.0, 0.5, 2.0 / 3.0]),
)
def test_baseline_cycles_closed_form(gaps, exposure):
    """No-prefetch cycles = base + misses × exposed penalty, exactly,
    for any miss spacing and exposure factor."""
    from repro.mem.trace import MissTrace, NO_EVICTION

    ref_index = np.cumsum([0] + gaps[:-1]).astype(np.int64)
    n = len(gaps)
    miss_trace = MissTrace(
        pcs=np.zeros(n, dtype=np.int64),
        pages=np.arange(n, dtype=np.int64),
        evicted=np.full(n, NO_EVICTION, dtype=np.int64),
        ref_index=ref_index,
        total_references=int(ref_index[-1]) + 10,
        name="t",
    )
    timing = TimingParameters(
        issue_width=1, instructions_per_reference=1.0,
        stall_exposure=exposure, walk_contention=0.0,
    )
    stats = simulate_cycles(miss_trace, NullPrefetcher(), CycleSimConfig(timing=timing))
    expected = miss_trace.total_references * 1.0 + n * exposure * 100
    assert stats.total_cycles == pytest.approx(expected)


@settings(max_examples=25, deadline=None)
@given(trace=rle_traces())
def test_warmup_never_counts_more_hits_than_misses(trace):
    config = TLBConfig(entries=4)
    miss_trace = filter_tlb(trace, config, warmup_fraction=0.4)
    stats = replay_prefetcher(
        miss_trace, create_prefetcher("DP", rows=16), buffer_entries=4
    )
    assert stats.pb_hits <= stats.measured_misses
    assert stats.measured_misses <= stats.tlb_misses
