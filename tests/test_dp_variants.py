"""Unit tests for the DP indexing extensions (paper Section 4 ongoing work)."""

from repro.core.distance import DistancePrefetcher
from repro.core.distance_pair import DistancePairPrefetcher, pack_distance_pair
from repro.core.pc_distance import PCDistancePrefetcher, pack_pc_distance

from conftest import drive_misses


class TestPCDistance:
    def test_packs_are_injective_for_small_values(self):
        seen = set()
        for pc in (0, 1, 7):
            for distance in (-5, -1, 1, 5):
                seen.add(pack_pc_distance(pc, distance))
        assert len(seen) == 12

    def test_sequential_scan_predicts(self):
        dp = PCDistancePrefetcher(rows=32)
        prefetches = drive_misses(dp, [0, 1, 2, 3, 4], pcs=[7] * 5)
        assert prefetches[3] == [4]
        assert prefetches[4] == [5]

    def test_pc_disambiguates_same_distance(self):
        """Two instructions producing distance 1 with different
        successors do not alias (plain DP would mix their histories)."""
        dp = PCDistancePrefetcher(rows=64, ways=0, slots=1)
        # PC 1: after distance 1 comes distance 10.
        # PC 2: after distance 1 comes distance 20.
        drive_misses(
            dp,
            [0, 1, 11, 100, 101, 121],
            pcs=[1, 1, 1, 2, 2, 2],
        )
        # Revisit PC 1's pattern: at distance 1 predict +10 only.
        prefetches = drive_misses(dp, [200, 201], pcs=[1, 1])
        assert prefetches[1] == [211]

    def test_flush(self):
        dp = PCDistancePrefetcher(rows=32)
        drive_misses(dp, [0, 1, 2, 3])
        dp.flush()
        assert drive_misses(dp, [10, 11, 12])[0] == []

    def test_label(self):
        assert PCDistancePrefetcher(rows=128).label == "DP-PC,128,D"


class TestDistancePair:
    def test_pack_handles_negative_distances(self):
        assert pack_distance_pair(-1, 1) != pack_distance_pair(1, -1)
        assert pack_distance_pair(-1, -1) != pack_distance_pair(1, 1)

    def test_sequential_scan_predicts(self):
        dp = DistancePairPrefetcher(rows=32)
        prefetches = drive_misses(dp, [0, 1, 2, 3, 4, 5])
        # Pair (1,1) must be seen once before predicting.
        assert prefetches[4] == [5]
        assert prefetches[5] == [6]

    def test_second_order_disambiguation(self):
        """A pattern ambiguous to first-order DP — after distance 1
        comes 2 or 3, determined by the *preceding* distance — is fully
        deterministic for the pair index."""
        cycle = [1, 2, 1, 3]  # pairs (1,2)->1, (2,1)->3, (1,3)->1, (3,1)->2
        pages = [0]
        for _ in range(6):
            for delta in cycle:
                pages.append(pages[-1] + delta)
        train, measure = pages[: len(pages) // 2], pages[len(pages) // 2 - 1 :]

        def correct_count(prefetcher) -> int:
            drive_misses(prefetcher, train)
            out = drive_misses(prefetcher, measure)
            return sum(
                1
                for i in range(len(measure) - 1)
                if measure[i + 1] in out[i]
            )

        first_order = correct_count(DistancePrefetcher(rows=64, ways=0, slots=1))
        second_order = correct_count(
            DistancePairPrefetcher(rows=64, ways=0, slots=1)
        )
        # First-order DP flips on the alternating successor of distance
        # 1 (wrong every time with a single slot); the pair index never
        # does. Half the transitions involve that ambiguity.
        assert second_order >= first_order + 3

    def test_flush(self):
        dp = DistancePairPrefetcher(rows=32)
        drive_misses(dp, [0, 1, 2, 3, 4])
        dp.flush()
        assert drive_misses(dp, [10, 11, 12, 13])[:2] == [[], []]

    def test_label(self):
        assert DistancePairPrefetcher(rows=128).label == "DP-2,128,D"
