"""Unit and property tests for the generic prediction table and slots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction_table import (
    DIRECT_MAPPED,
    FULLY_ASSOCIATIVE_TABLE,
    PredictionTable,
    SlotList,
)
from repro.errors import ConfigurationError


class TestSlotList:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            SlotList(0)

    def test_mru_order(self):
        slots = SlotList(3)
        for value in (1, 2, 3):
            slots.add(value)
        assert slots.values() == [3, 2, 1]

    def test_lru_eviction(self):
        slots = SlotList(2)
        slots.add(1)
        slots.add(2)
        evicted = slots.add(3)
        assert evicted == 1
        assert slots.values() == [3, 2]

    def test_refresh_existing(self):
        slots = SlotList(2)
        slots.add(1)
        slots.add(2)
        assert slots.add(1) is None  # refresh, no eviction
        assert slots.values() == [1, 2]

    def test_contains_and_len(self):
        slots = SlotList(2)
        slots.add(5)
        assert 5 in slots
        assert len(slots) == 1


class TestPredictionTable:
    def test_labels(self):
        assert PredictionTable(256, DIRECT_MAPPED).label == "256,D"
        assert PredictionTable(256, 4).label == "256,4"
        assert PredictionTable(256, FULLY_ASSOCIATIVE_TABLE).label == "256,F"

    @pytest.mark.parametrize("rows,ways", [(0, 1), (256, -1), (256, 3)])
    def test_invalid(self, rows, ways):
        with pytest.raises(ConfigurationError):
            PredictionTable(rows, ways)

    def test_negative_keys_map_to_valid_sets(self):
        table = PredictionTable(8, DIRECT_MAPPED)
        assert 0 <= table.set_index(-5) < 8
        table.insert(-5, "payload")
        assert table.lookup(-5) == "payload"

    def test_tag_mismatch_returns_none(self):
        table = PredictionTable(8, DIRECT_MAPPED)
        table.insert(1, "one")
        # 9 maps to the same set but has a different tag.
        assert table.lookup(9) is None

    def test_direct_mapped_conflict_eviction(self):
        table = PredictionTable(8, DIRECT_MAPPED)
        table.insert(1, "one")
        evicted = table.insert(9, "nine")
        assert evicted == 1
        assert table.lookup(1) is None
        assert table.row_evictions == 1

    def test_two_way_holds_conflicting_pair(self):
        table = PredictionTable(8, 2)  # 4 sets
        table.insert(1, "a")
        table.insert(5, "b")  # same set (1 % 4 == 5 % 4)
        assert table.lookup(1) == "a"
        assert table.lookup(5) == "b"
        # Third conflicting key evicts the set's LRU (1 was just used...
        # then 5; LRU afterwards is 1).
        table.insert(9, "c")
        assert table.lookup(1) is None

    def test_lookup_promotes_mru(self):
        table = PredictionTable(4, 2)  # 2 sets
        table.insert(0, "a")
        table.insert(2, "b")
        table.lookup(0)  # promote
        table.insert(4, "c")  # evicts LRU = 2
        assert table.lookup(2) is None
        assert table.lookup(0) == "a"

    def test_lookup_or_insert(self):
        table = PredictionTable(8)
        payload, allocated = table.lookup_or_insert(3, lambda: SlotList(2))
        assert allocated
        again, allocated_again = table.lookup_or_insert(3, lambda: SlotList(2))
        assert not allocated_again
        assert again is payload

    def test_flush(self):
        table = PredictionTable(8)
        table.insert(1, "x")
        assert table.flush() == 1
        assert len(table) == 0

    def test_stats(self):
        table = PredictionTable(8)
        table.lookup(1)
        table.insert(1, "x")
        table.lookup(1)
        assert table.lookups == 2
        assert table.tag_hits == 1

    def test_items(self):
        table = PredictionTable(8)
        table.insert(1, "a")
        table.insert(2, "b")
        assert dict(table.items()) == {1: "a", 2: "b"}


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=200),
    ways=st.sampled_from([1, 2, 4, 0]),
)
def test_table_matches_per_set_lru_model(keys, ways):
    """Property: each set is an LRU dict keyed by the full (tag) key."""
    rows = 8
    table = PredictionTable(rows, ways)
    effective_ways = rows if ways == 0 else ways
    num_sets = rows // effective_ways
    model: dict[int, list[int]] = {s: [] for s in range(num_sets)}  # LRU first

    for key in keys:
        set_index = key % num_sets
        bucket = model[set_index]
        expected = key in bucket
        payload = table.lookup(key)
        assert (payload is not None) == expected
        if expected:
            bucket.remove(key)
            bucket.append(key)
        else:
            table.insert(key, key)
            if len(bucket) >= effective_ways:
                bucket.pop(0)
            bucket.append(key)
    for set_index, bucket in model.items():
        for key in bucket:
            assert table.peek(key) == key
