"""Tests for the memory-traffic accounting."""

import pytest

from repro.analysis.traffic import (
    measure_traffic,
    render_traffic,
    rp_to_dp_traffic_ratio,
    traffic_comparison,
)
from repro.sim.config import TLBConfig
from repro.sim.two_phase import filter_tlb
from repro.workloads.registry import get_trace

from conftest import make_trace


@pytest.fixture(scope="module")
def galgel_misses():
    return filter_tlb(get_trace("galgel", 0.05))


class TestMeasurement:
    def test_dp_has_no_overhead_traffic(self, galgel_misses):
        summary = measure_traffic(galgel_misses, "DP")
        assert summary.overhead_ops == 0
        assert summary.fetch_ops > 0
        assert summary.total_ops == summary.fetch_ops

    def test_rp_overhead_dominates(self, galgel_misses):
        summary = measure_traffic(galgel_misses, "RP")
        assert summary.overhead_ops > summary.tlb_misses  # > 1 op/miss
        assert summary.ops_per_miss > 3.0

    def test_null_mechanism_zero_traffic(self, galgel_misses):
        summary = measure_traffic(galgel_misses, "none")
        assert summary.total_ops == 0
        assert summary.ops_per_miss == 0.0


class TestRatio:
    def test_rp_to_dp_ratio_at_least_paper_band(self, galgel_misses):
        """'RP generates ... anywhere between 2-3 times that for DP'.

        Ours runs higher (4-6x): on highly regular apps DP's slots hold
        a single distance and duplicate fetches coalesce, so DP issues
        *less* than the paper's assumed 2 fetches per miss while RP
        still pays its ~4 pointer writes. The direction and magnitude
        class of the claim hold a fortiori.
        """
        ratio = rp_to_dp_traffic_ratio(galgel_misses)
        assert 2.0 < ratio < 8.0

    def test_ratio_degenerate_cases(self):
        # A single-miss stream: neither mechanism issues anything.
        trace = make_trace([1])
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        assert rp_to_dp_traffic_ratio(miss_trace) == 0.0


class TestComparison:
    def test_comparison_covers_requested_mechanisms(self, galgel_misses):
        comparison = traffic_comparison(galgel_misses, mechanisms=("RP", "DP"))
        assert set(comparison) == {"RP", "DP"}

    def test_render(self, galgel_misses):
        comparison = traffic_comparison(galgel_misses, mechanisms=("RP", "DP"))
        text = render_traffic(comparison)
        assert "Overhead ops" in text
        assert "RP" in text
