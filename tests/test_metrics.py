"""Unit tests for accuracy aggregates and the paper-shape checkers."""

import pytest

from repro.analysis.metrics import (
    accuracy_by_mechanism,
    average_accuracy,
    best_or_within_counts,
    miss_rates,
    weighted_average_accuracy,
)
from repro.analysis.tables import (
    check_table2_shape,
    check_table3_shape,
    compare_table2,
    compare_table3,
)
from repro.sim.stats import PrefetchRunStats


def _stats(workload, mechanism, hits, misses, refs) -> PrefetchRunStats:
    return PrefetchRunStats(
        workload=workload,
        mechanism=mechanism,
        tlb_label="128e-FA",
        total_references=refs,
        tlb_misses=misses,
        measured_misses=misses,
        pb_hits=hits,
        prefetches_issued=0,
        buffer_inserted=0,
        buffer_refreshed=0,
        buffer_evicted_unused=0,
        overhead_memory_ops=0,
        prefetch_fetch_ops=0,
    )


class TestAverages:
    def test_plain_average(self):
        runs = [_stats("a", "DP", 50, 100, 1000), _stats("b", "DP", 0, 100, 1000)]
        assert average_accuracy(runs) == pytest.approx(0.25)

    def test_weighted_average_weights_by_miss_rate(self):
        # App a: rate 0.1, accuracy 1.0; app b: rate 0.01, accuracy 0.
        runs = [_stats("a", "DP", 100, 100, 1000), _stats("b", "DP", 0, 10, 1000)]
        expected = (0.1 * 1.0 + 0.01 * 0.0) / 0.11
        assert weighted_average_accuracy(runs) == pytest.approx(expected)

    def test_empty(self):
        assert average_accuracy([]) == 0.0
        assert weighted_average_accuracy([]) == 0.0


class TestBestOrWithin:
    def test_counts(self):
        per_app = {
            "a": {"DP": 0.9, "RP": 0.5},          # DP best
            "b": {"DP": 0.85, "RP": 0.9},         # DP within 10%
            "c": {"DP": 0.5, "RP": 0.9},          # DP neither
            "d": {"DP": 0.0, "RP": 0.0},          # skipped (floor)
        }
        best, within = best_or_within_counts(per_app, "DP")
        assert best == 1
        assert within == 2

    def test_tolerance(self):
        per_app = {"a": {"DP": 0.80, "RP": 1.0}}
        assert best_or_within_counts(per_app, "DP", tolerance=0.25)[1] == 1
        assert best_or_within_counts(per_app, "DP", tolerance=0.10)[1] == 0


class TestPivots:
    def test_accuracy_by_mechanism(self):
        runs = [_stats("a", "DP", 1, 2, 10), _stats("a", "RP", 2, 2, 10)]
        pivot = accuracy_by_mechanism(runs)
        assert pivot == {"a": {"DP": 0.5, "RP": 1.0}}

    def test_miss_rates(self):
        runs = [_stats("a", "DP", 0, 5, 100)]
        assert miss_rates(runs) == {"a": 0.05}


class TestShapeCheckers:
    def test_table2_good_shape_passes(self):
        measured = {
            "DP": {"average": 0.6, "weighted": 0.80},
            "RP": {"average": 0.4, "weighted": 0.85},
            "ASP": {"average": 0.35, "weighted": 0.70},
            "MP": {"average": 0.2, "weighted": 0.08},
        }
        assert check_table2_shape(measured) == []

    def test_table2_detects_mp_not_collapsing(self):
        measured = {
            "DP": {"average": 0.6, "weighted": 0.8},
            "RP": {"average": 0.4, "weighted": 0.85},
            "ASP": {"average": 0.35, "weighted": 0.05},
            "MP": {"average": 0.2, "weighted": 0.50},
        }
        assert check_table2_shape(measured)

    def test_table2_detects_dp_not_leading_average(self):
        measured = {
            "DP": {"average": 0.3, "weighted": 0.8},
            "RP": {"average": 0.5, "weighted": 0.85},
            "ASP": {"average": 0.2, "weighted": 0.7},
            "MP": {"average": 0.1, "weighted": 0.04},
        }
        assert check_table2_shape(measured)

    def test_table3_good_shape_passes(self):
        measured = {
            "ammp": {"RP": 1.00, "DP": 0.89},
            "mcf": {"RP": 1.08, "DP": 0.93},
        }
        assert check_table3_shape(measured) == []

    def test_table3_detects_dp_slower(self):
        measured = {"ammp": {"RP": 0.9, "DP": 0.95}, "mcf": {"RP": 1.05, "DP": 1.0}}
        failures = check_table3_shape(measured)
        assert any("ammp" in f for f in failures)

    def test_table3_detects_mcf_rp_speedup(self):
        measured = {"mcf": {"RP": 0.8, "DP": 0.8}}
        assert check_table3_shape(measured)


class TestRenderers:
    def test_compare_table2_includes_paper_numbers(self):
        measured = {
            "DP": {"average": 0.6, "weighted": 0.8},
            "RP": {"average": 0.4, "weighted": 0.85},
            "ASP": {"average": 0.35, "weighted": 0.7},
            "MP": {"average": 0.2, "weighted": 0.08},
        }
        text = compare_table2(measured)
        assert "0.43" in text  # paper DP average
        assert "0.86" in text  # paper RP weighted

    def test_compare_table3_includes_paper_numbers(self):
        measured = {"ammp": {"RP": 1.0, "DP": 0.89}}
        text = compare_table3(measured)
        assert "0.97" in text
        assert "0.86" in text
