"""Unit tests for the workload pattern primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.trace import ReferenceTrace
from repro.sim.config import TLBConfig
from repro.sim.two_phase import filter_tlb
from repro.workloads.patterns import (
    ChangingStrideSweep,
    Concat,
    DistanceCycleScan,
    HotSetLoop,
    InterleavedStreams,
    MarkovAlternation,
    PermutationWalk,
    RandomWalk,
    RoundRobinMix,
    StridedSweep,
    WithHotTraffic,
    WithNoise,
    draw_counts,
)


def _trace(pattern, seed=7) -> ReferenceTrace:
    rng = np.random.default_rng(seed)
    pcs, pages, counts = pattern.emit(rng)
    return ReferenceTrace(pcs, pages, counts)


class TestDrawCounts:
    def test_integer_mean_is_exact(self, rng):
        counts = draw_counts(rng, 1000, 3.0)
        assert (counts == 3).all()

    def test_fractional_mean_approximated(self, rng):
        counts = draw_counts(rng, 20000, 2.5)
        assert counts.min() >= 1
        assert abs(counts.mean() - 2.5) < 0.05

    def test_rejects_below_one(self, rng):
        with pytest.raises(ConfigurationError):
            draw_counts(rng, 10, 0.5)


class TestStridedSweep:
    def test_pages_and_repeats(self):
        trace = _trace(StridedSweep(pc=1, base=100, count=4, stride=2, sweeps=2))
        assert trace.pages.tolist() == [100, 102, 104, 106] * 2
        assert (trace.pcs == 1).all()

    def test_negative_stride_stays_non_negative(self):
        trace = _trace(StridedSweep(pc=1, base=0, count=5, stride=-3))
        assert trace.pages.min() >= 0
        deltas = np.diff(trace.pages)
        assert (deltas == -3).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StridedSweep(pc=1, base=0, count=0)
        with pytest.raises(ConfigurationError):
            StridedSweep(pc=1, base=0, count=4, stride=0)


class TestChangingStrideSweep:
    def test_segments_use_each_stride(self):
        pattern = ChangingStrideSweep(
            pc=1, base=0, segment_pages=3, strides=[1, 4]
        )
        trace = _trace(pattern)
        deltas = np.diff(trace.pages[:3])
        assert (deltas == 1).all()
        deltas2 = np.diff(trace.pages[3:6])
        assert (deltas2 == 4).all()

    def test_segments_do_not_overlap(self):
        pattern = ChangingStrideSweep(pc=1, base=0, segment_pages=5, strides=[2, 3])
        trace = _trace(pattern)
        assert trace.footprint_pages == 10


class TestInterleavedStreams:
    def test_round_robin_order(self):
        pattern = InterleavedStreams(
            pc=1, streams=[(0, 1), (1000, 1)], length=3
        )
        trace = _trace(pattern)
        assert trace.pages.tolist() == [0, 1000, 1, 1001, 2, 1002]

    def test_shared_pc_pool_rotates(self):
        pattern = InterleavedStreams(
            pc=16, streams=[(0, 1), (1000, 1)], length=2, pc_pool=2
        )
        trace = _trace(pattern)
        assert trace.pcs.tolist() == [16, 17, 16, 17]

    def test_per_stream_pcs(self):
        pattern = InterleavedStreams(
            pc=16, streams=[(0, 1), (1000, 1)], length=2, shared_pcs=False
        )
        trace = _trace(pattern)
        assert trace.pcs.tolist() == [16, 17, 16, 17]

    def test_distance_cycle_in_miss_stream(self):
        """The defining property: distances between consecutive misses
        cycle through the inter-stream gaps."""
        pattern = InterleavedStreams(
            pc=1, streams=[(0, 1), (500, 1), (900, 1)], length=50
        )
        trace = _trace(pattern)
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        distances = np.diff(miss_trace.pages)
        unique = sorted(set(distances.tolist()))
        assert unique == [-899, 400, 500]  # wrap, gap A->B, gap B->C


class TestDistanceCycleScan:
    def test_follows_cycle(self):
        pattern = DistanceCycleScan(pc=1, base=10, cycle=[1, 2], steps=5)
        trace = _trace(pattern)
        assert trace.pages.tolist() == [10, 11, 13, 14, 16]

    def test_mixed_sign_cycle_stays_non_negative(self):
        pattern = DistanceCycleScan(pc=1, base=0, cycle=[2, -5], steps=8)
        trace = _trace(pattern)
        assert trace.pages.min() >= 0

    def test_rejects_zero_distance(self):
        with pytest.raises(ConfigurationError):
            DistanceCycleScan(pc=1, base=0, cycle=[1, 0], steps=4)


class TestPermutationWalk:
    def test_fixed_permutation_repeats_exactly(self):
        pattern = PermutationWalk(pc=1, base=0, count=10, sweeps=2)
        trace = _trace(pattern)
        first = trace.pages[:10].tolist()
        second = trace.pages[10:].tolist()
        assert first == second
        assert sorted(first) == list(range(10))

    def test_reshuffle_changes_order(self):
        pattern = PermutationWalk(
            pc=1, base=0, count=50, sweeps=2, reshuffle_each_sweep=True
        )
        trace = _trace(pattern)
        assert trace.pages[:50].tolist() != trace.pages[50:].tolist()

    def test_deterministic_for_seed(self):
        pattern = PermutationWalk(pc=1, base=0, count=20, sweeps=1)
        assert _trace(pattern, seed=3).pages.tolist() == _trace(pattern, seed=3).pages.tolist()


class TestMarkovAlternation:
    def test_core_only_rounds_mode(self):
        pattern = MarkovAlternation(
            pc=1, base=0, core_count=4, batches=1, rounds=2,
            permute_core=False, core_only_rounds=True,
        )
        trace = _trace(pattern)
        # Round 0: core alone; round 1: core interleaved with batch.
        assert trace.pages[:4].tolist() == [0, 1, 2, 3]
        assert trace.pages[4:12].tolist() == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_always_interleaved_rotates_batches(self):
        pattern = MarkovAlternation(
            pc=1, base=0, core_count=2, batches=2, rounds=2,
            permute_core=False, core_only_rounds=False,
        )
        trace = _trace(pattern)
        assert trace.pages[:4].tolist() == [0, 2, 1, 3]   # batch 0
        assert trace.pages[4:8].tolist() == [0, 4, 1, 5]  # batch 1

    def test_permuted_core_covers_same_pages(self):
        pattern = MarkovAlternation(
            pc=1, base=0, core_count=8, batches=1, rounds=1, permute_core=True
        )
        trace = _trace(pattern)
        assert sorted(trace.pages.tolist()) == list(range(8))


class TestHotSetLoop:
    def test_laps_repeat(self):
        pattern = HotSetLoop(pc=1, base=0, count=4, laps=3)
        trace = _trace(pattern)
        assert trace.num_runs == 12
        assert trace.footprint_pages == 4

    def test_permuted_lap_fixed_across_laps(self):
        pattern = HotSetLoop(pc=1, base=0, count=8, laps=2, permute=True)
        trace = _trace(pattern)
        assert trace.pages[:8].tolist() == trace.pages[8:].tolist()
        assert trace.pages[:8].tolist() != list(range(8))


class TestWrappers:
    def test_hot_traffic_preserves_miss_stream(self):
        """The load-bearing property: hot-set dilution must not change
        which pages miss, only the reference count between misses."""
        inner = StridedSweep(pc=1, base=0, count=50, refs_per_page=2.0, sweeps=3)
        diluted = WithHotTraffic(
            inner, hot_pc=99, hot_base=10_000, hot_pages=8, hot_refs_per_run=20.0
        )
        plain_misses = filter_tlb(_trace(inner), TLBConfig(entries=16))
        diluted_misses = filter_tlb(_trace(diluted), TLBConfig(entries=16))
        plain_pages = plain_misses.pages.tolist()
        diluted_pages = [p for p in diluted_misses.pages.tolist() if p < 10_000]
        assert diluted_pages == plain_pages

    def test_hot_traffic_dilutes_miss_rate(self):
        inner = StridedSweep(pc=1, base=0, count=50, refs_per_page=2.0, sweeps=3)
        diluted = WithHotTraffic(
            inner, hot_pc=99, hot_base=10_000, hot_pages=8, hot_refs_per_run=20.0
        )
        plain = filter_tlb(_trace(inner), TLBConfig(entries=16))
        dil = filter_tlb(_trace(diluted), TLBConfig(entries=16))
        assert dil.miss_rate < plain.miss_rate / 5

    def test_burst_every_groups_inner_runs(self):
        inner = StridedSweep(pc=1, base=0, count=12, sweeps=1)
        bursty = WithHotTraffic(
            inner, hot_pc=99, hot_base=10_000, hot_pages=4,
            hot_refs_per_run=10.0, burst_every=4,
        )
        trace = _trace(bursty)
        # 12 inner runs + 3 hot runs interleaved after every 4th.
        assert trace.num_runs == 15
        assert trace.pages[4] >= 10_000
        # Hot reference volume is preserved on average (4 * 10 per gap).
        hot_counts = trace.counts[trace.pages >= 10_000]
        assert abs(hot_counts.mean() - 40.0) < 15.0

    def test_noise_injects_expected_fraction(self):
        inner = StridedSweep(pc=1, base=0, count=2000, sweeps=1)
        noisy = WithNoise(
            inner, fraction=0.2, noise_pc=99, noise_base=1_000_000
        )
        trace = _trace(noisy)
        noise_runs = int((trace.pages >= 1_000_000).sum())
        assert 300 < noise_runs < 500

    def test_zero_noise_is_identity(self):
        inner = StridedSweep(pc=1, base=0, count=10, sweeps=1)
        noisy = WithNoise(inner, fraction=0.0, noise_pc=99, noise_base=1_000_000)
        assert _trace(noisy).pages.tolist() == _trace(inner).pages.tolist()


class TestCombinators:
    def test_concat_orders_phases(self):
        a = StridedSweep(pc=1, base=0, count=3)
        b = StridedSweep(pc=2, base=100, count=2)
        trace = _trace(Concat(a, b))
        assert trace.pages.tolist() == [0, 1, 2, 100, 101]

    def test_round_robin_mix_preserves_all_runs(self):
        a = StridedSweep(pc=1, base=0, count=10)
        b = StridedSweep(pc=2, base=100, count=25)
        trace = _trace(RoundRobinMix([a, b], burst_runs=4))
        assert trace.num_runs == 35
        assert sorted(trace.pages.tolist()) == sorted(
            list(range(10)) + list(range(100, 125))
        )

    def test_round_robin_alternates_in_bursts(self):
        a = StridedSweep(pc=1, base=0, count=8)
        b = StridedSweep(pc=2, base=100, count=8)
        trace = _trace(RoundRobinMix([a, b], burst_runs=2))
        assert trace.pages[:6].tolist() == [0, 1, 100, 101, 2, 3]

    def test_random_walk_footprint_bounded(self):
        trace = _trace(RandomWalk(pc=1, base=50, count=20, steps=500))
        assert trace.pages.min() >= 50
        assert trace.pages.max() < 70
