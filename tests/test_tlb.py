"""Unit and property tests for the set-associative LRU TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tlb.tlb import FULLY_ASSOCIATIVE, TLB


class TestConstruction:
    def test_fully_associative_default(self):
        tlb = TLB(entries=128)
        assert tlb.num_sets == 1
        assert tlb.ways == 128
        assert tlb.label == "128e-FA"

    def test_set_associative(self):
        tlb = TLB(entries=64, ways=2)
        assert tlb.num_sets == 32
        assert tlb.label == "64e-2w"

    @pytest.mark.parametrize("entries,ways", [(0, 1), (-1, 1), (64, -1), (64, 3)])
    def test_invalid(self, entries, ways):
        with pytest.raises(ConfigurationError):
            TLB(entries=entries, ways=ways)


class TestLRUSemantics:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert not tlb.probe(1)
        tlb.fill(1)
        assert tlb.probe(1)
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_lru_eviction_order(self):
        tlb = TLB(entries=2)
        assert tlb.access(1).evicted is None
        assert tlb.access(2).evicted is None
        # 1 is LRU; filling 3 evicts it.
        outcome = tlb.access(3)
        assert not outcome.hit
        assert outcome.evicted == 1

    def test_hit_promotes_to_mru(self):
        tlb = TLB(entries=2)
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)  # promote 1; now 2 is LRU
        assert tlb.access(3).evicted == 2

    def test_set_isolation(self):
        tlb = TLB(entries=4, ways=2)  # 2 sets: even/odd pages
        tlb.access(0)
        tlb.access(2)
        tlb.access(4)  # evicts 0 (same set), odd set untouched
        assert 0 not in tlb
        tlb.access(1)
        assert 1 in tlb

    def test_contains_does_not_mutate(self):
        tlb = TLB(entries=2)
        tlb.access(1)
        tlb.access(2)
        assert 1 in tlb  # no promotion
        assert tlb.access(3).evicted == 1

    def test_flush(self):
        tlb = TLB(entries=4)
        for page in range(4):
            tlb.access(page)
        assert tlb.flush() == 4
        assert len(tlb) == 0
        assert not tlb.probe(0)

    def test_reset_stats_keeps_contents(self):
        tlb = TLB(entries=4)
        tlb.access(1)
        tlb.reset_stats()
        assert tlb.hits == 0 and tlb.misses == 0
        assert 1 in tlb

    def test_miss_rate(self):
        tlb = TLB(entries=4)
        tlb.access(1)
        tlb.access(1)
        assert tlb.miss_rate == pytest.approx(0.5)


class _ReferenceLRU:
    """Oracle: fully-associative LRU as an explicit recency list."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.order: list[int] = []  # LRU first

    def access(self, page: int) -> tuple[bool, int | None]:
        if page in self.order:
            self.order.remove(page)
            self.order.append(page)
            return True, None
        evicted = None
        if len(self.order) >= self.capacity:
            evicted = self.order.pop(0)
        self.order.append(page)
        return False, evicted


@settings(max_examples=60, deadline=None)
@given(
    pages=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
    capacity=st.sampled_from([2, 4, 8]),
)
def test_tlb_matches_reference_lru(pages, capacity):
    """Property: the TLB behaves exactly like a textbook LRU list."""
    tlb = TLB(entries=capacity)
    oracle = _ReferenceLRU(capacity)
    for page in pages:
        outcome = tlb.access(page)
        expected_hit, expected_evicted = oracle.access(page)
        assert outcome.hit == expected_hit
        assert outcome.evicted == expected_evicted
    assert sorted(tlb.resident_pages()) == sorted(oracle.order)


@settings(max_examples=40, deadline=None)
@given(
    pages=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200),
)
def test_set_associative_equals_per_set_lru(pages):
    """Property: a W-way TLB is an independent LRU per set."""
    tlb = TLB(entries=8, ways=2)
    oracles = {s: _ReferenceLRU(2) for s in range(4)}
    for page in pages:
        outcome = tlb.access(page)
        hit, evicted = oracles[page % 4].access(page)
        assert outcome.hit == hit
        assert outcome.evicted == evicted
