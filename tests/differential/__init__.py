"""Differential-testing harness for the fast replay engine.

The fast engine (:mod:`repro.sim.fastpath`) is shippable only because
this package proves it is exactly the engine the paper's numbers come
from: every test executes the same work on the reference engine and
the fast engine and asserts bit-identical statistics.

- ``harness`` — the :class:`DifferentialRunner` comparison machinery.
- ``test_curated_grid`` — a curated grid of canonical specs spanning
  every mechanism family × workload family × page size.
- ``test_fuzz`` — seeded, shrinkable randomized trace/spec generators
  (hypothesis) so new scenarios are fuzzed on every run.
"""
