"""DifferentialRunner: execute one spec on every engine, demand equality.

"Bit-identical" here is literal: the full
:class:`~repro.sim.stats.PrefetchRunStats` dataclass — every stored
counter and every ``extra`` annotation — must compare equal field for
field, and whole :class:`~repro.run.results.ResultSet` batches must
serialize to identical JSON. Tolerances would defeat the point: the
fast and batch engines are only trustworthy if they *are* the
reference engine, observationally.

Every check covers three engines: the reference loop, the per-spec
fast path, and the one-pass batch engine (``engine="batch"`` forces
the fused loop through :class:`~repro.run.Runner` even for a single
spec; the direct-trace checks call
:func:`repro.sim.batchpath.replay_batch` with a duplicated request so
the equivalence-class deduplication is exercised too).
"""

from __future__ import annotations

from dataclasses import asdict

from repro.mem.trace import MissTrace, ReferenceTrace
from repro.prefetch.base import Prefetcher
from repro.run import MissStreamCache, ResultSet, Runner, RunSpec
from repro.sim.config import SimulationConfig
from repro.sim.batchpath import replay_batch
from repro.sim.fastpath import replay_fast
from repro.sim.stats import PrefetchRunStats
from repro.sim.two_phase import filter_tlb, replay_prefetcher


class EngineDivergenceError(AssertionError):
    """The two engines disagreed; the message lists differing fields."""


def assert_identical(
    reference: PrefetchRunStats, fast: PrefetchRunStats, context: str = ""
) -> None:
    """Raise :class:`EngineDivergenceError` unless stats match exactly."""
    ref_dict = asdict(reference)
    fast_dict = asdict(fast)
    if ref_dict == fast_dict:
        return
    diffs = [
        f"  {name}: reference={ref_dict[name]!r} fast={fast_dict[name]!r}"
        for name in ref_dict
        if ref_dict[name] != fast_dict.get(name, object())
    ]
    where = f" [{context}]" if context else ""
    raise EngineDivergenceError(
        "fast engine diverged from reference engine" + where + ":\n"
        + "\n".join(diffs)
    )


class DifferentialRunner:
    """Runs identical work through both replay engines and compares.

    Uses a private miss-stream cache so phase 1 (TLB filtering, shared
    by both engines by construction) is paid once per stream while the
    two phase-2 replays stay independent.
    """

    def __init__(self) -> None:
        self.runner = Runner(cache=MissStreamCache())
        self.checked = 0

    def run_both(self, spec: RunSpec) -> tuple[PrefetchRunStats, PrefetchRunStats]:
        """Execute ``spec`` on the reference and the fast engine."""
        reference = self.runner.run_one(spec.derive(engine="reference"))
        fast = self.runner.run_one(spec.derive(engine="fast"))
        return reference, fast

    def check_spec(self, spec: RunSpec) -> PrefetchRunStats:
        """Assert all three engines agree on ``spec``; return the stats."""
        reference, fast = self.run_both(spec)
        assert_identical(reference, fast, context=f"spec {spec.label} {spec.key()}")
        # engine="batch" forces the fused loop even for this singleton.
        (batch,) = self.runner.run([spec.derive(engine="batch")])
        assert_identical(
            reference, batch, context=f"batch spec {spec.label} {spec.key()}"
        )
        self.checked += 1
        return reference

    def check_batch(self, specs: list[RunSpec]) -> ResultSet:
        """Assert whole-batch ResultSets serialize identically."""
        reference = self.runner.run([spec.derive(engine="reference") for spec in specs])
        fast = self.runner.run([spec.derive(engine="fast") for spec in specs])
        batch = self.runner.run([spec.derive(engine="batch") for spec in specs])
        for ref_row, fast_row, batch_row in zip(reference, fast, batch):
            assert_identical(ref_row, fast_row, context=ref_row.workload)
            assert_identical(
                ref_row, batch_row, context=f"batch {ref_row.workload}"
            )
        if reference.to_json() != fast.to_json():
            raise EngineDivergenceError(
                "ResultSet JSON differs between engines despite equal rows"
            )
        if reference.to_json() != batch.to_json():
            raise EngineDivergenceError(
                "batch ResultSet JSON differs from reference despite equal rows"
            )
        self.checked += len(specs)
        return reference

    def check_trace(
        self,
        trace: ReferenceTrace,
        prefetcher_factory,
        config: SimulationConfig,
    ) -> PrefetchRunStats:
        """Differential check for an ad-hoc trace (no registry spec).

        ``prefetcher_factory`` must build a *fresh* mechanism per call
        — each engine gets its own instance, exactly as
        :class:`~repro.run.runner.Runner` builds one per run.
        """
        miss_trace = filter_tlb(trace, config.tlb, config.warmup_fraction)
        return self.check_miss_trace(miss_trace, prefetcher_factory, config)

    def check_miss_trace(
        self,
        miss_trace: MissTrace,
        prefetcher_factory,
        config: SimulationConfig,
    ) -> PrefetchRunStats:
        """Differential check replaying an already-filtered stream."""
        reference = replay_prefetcher(
            miss_trace,
            prefetcher_factory(),
            buffer_entries=config.buffer_entries,
            max_prefetches_per_miss=config.max_prefetches_per_miss,
        )
        fast = replay_fast(
            miss_trace,
            prefetcher_factory(),
            buffer_entries=config.buffer_entries,
            max_prefetches_per_miss=config.max_prefetches_per_miss,
        )
        assert_identical(reference, fast, context=f"trace {miss_trace.name}")
        # The same request twice in one batch: the second slot dedups
        # onto the first's simulation, and both must match reference.
        batch_rows = replay_batch(
            miss_trace,
            [
                (
                    prefetcher_factory(),
                    config.buffer_entries,
                    config.max_prefetches_per_miss,
                )
                for _ in range(2)
            ],
        )
        for slot, row in enumerate(batch_rows):
            assert_identical(
                reference, row, context=f"batch trace {miss_trace.name} slot {slot}"
            )
        self.checked += 1
        return reference


def fresh_factory(builder, *args, **kwargs):
    """A zero-argument factory building a fresh mechanism per call."""

    def factory() -> Prefetcher:
        return builder(*args, **kwargs)

    return factory
