"""Curated differential grid: canonical specs, both engines, no drift.

Spans every mechanism family × one representative workload per trace
suite × the superpage sizes, plus associativity, slot, buffer, clamp,
warm-up and TLB-shape variants — the configuration axes the paper's
tables and figures actually sweep. Every spec must produce
bit-identical statistics on the reference and fast engines.
"""

from __future__ import annotations

import pytest

from repro.run import RunSpec
from repro.sim.config import TLBConfig

from tests.differential.harness import DifferentialRunner

#: One representative application per workload family (see SUITES).
FAMILY_APPS = {
    "spec2000": "galgel",
    "mediabench": "epic",
    "etch": "perl4",
    "ptrdist": "anagram",
}

SCALE = 0.05

#: Mechanism configurations covering every family the engine replays.
MECHANISMS: list[tuple[str, dict]] = [
    ("none", {}),
    ("SP", {}),
    ("SP-adaptive", {}),
    ("ASP", {"rows": 256}),
    ("MP", {"rows": 256}),
    ("DP", {"rows": 256}),
    ("DP-PC", {"rows": 256}),
    ("DP-2", {"rows": 256}),
    ("RP", {}),
]


def _grid() -> list[RunSpec]:
    specs: list[RunSpec] = []
    # Every mechanism family × every workload family at paper defaults.
    for app in FAMILY_APPS.values():
        for mechanism, params in MECHANISMS:
            specs.append(RunSpec.of(app, mechanism, scale=SCALE, **params))
    # Superpages: the paper's page-size axis for the head-to-head four.
    for page_size in (8192, 16384):
        for mechanism in ("DP", "MP", "ASP", "RP"):
            specs.append(
                RunSpec.of("galgel", mechanism, scale=SCALE, page_size=page_size)
            )
    # Table associativity and slot variants (incl. fully associative).
    specs += [
        RunSpec.of("epic", "MP", scale=SCALE, rows=256, ways=2),
        RunSpec.of("epic", "MP", scale=SCALE, rows=256, ways=4),
        RunSpec.of("epic", "MP", scale=SCALE, rows=64, ways=0),
        RunSpec.of("epic", "ASP", scale=SCALE, rows=64, ways=4),
        RunSpec.of("epic", "DP", scale=SCALE, rows=64, ways=4, slots=3),
        RunSpec.of("epic", "DP", scale=SCALE, rows=64, ways=0),
        RunSpec.of("epic", "DP-2", scale=SCALE, rows=64, ways=2),
        RunSpec.of("epic", "SP", scale=SCALE, degree=4),
        RunSpec.of("epic", "RP", scale=SCALE, variant_three=1),
    ]
    # Buffer, clamp, warm-up and TLB-shape axes.
    specs += [
        RunSpec.of("galgel", "DP", scale=SCALE, buffer_entries=4),
        RunSpec.of("galgel", "DP", scale=SCALE, buffer_entries=64),
        RunSpec.of("galgel", "DP", scale=SCALE, max_prefetches_per_miss=1),
        RunSpec.of("galgel", "RP", scale=SCALE, max_prefetches_per_miss=1),
        RunSpec.of("galgel", "DP", scale=SCALE, warmup_fraction=0.3),
        RunSpec.of("galgel", "DP", scale=SCALE, tlb=TLBConfig(entries=64, ways=4)),
    ]
    return specs


GRID = _grid()


@pytest.fixture(scope="module")
def differential() -> DifferentialRunner:
    return DifferentialRunner()


@pytest.mark.parametrize("spec", GRID, ids=[spec.label + "/" + spec.key()[:6] for spec in GRID])
def test_engines_bit_identical(differential, spec):
    differential.check_spec(spec)


def test_grid_covers_every_mechanism_family():
    """The grid must not silently lose a mechanism family."""
    from repro.prefetch.factory import PREFETCHER_NAMES

    covered = {spec.mechanism.name for spec in GRID}
    assert covered == set(PREFETCHER_NAMES)


def test_grid_is_reasonably_sized():
    assert len(GRID) >= 50


def test_whole_batch_result_sets_identical(differential):
    """Batch execution (the Runner path) agrees wholesale, too."""
    specs = [
        RunSpec.of("galgel", mechanism, scale=SCALE)
        for mechanism in ("DP", "RP", "ASP", "MP")
    ]
    differential.check_batch(specs)


def test_wide_batch_with_double_digit_slot_indices(differential):
    """A fused loop with 12+ distinct classes stays bit-identical.

    Generated per-slot names are ``<prefix><k>`` with ``k`` a decimal
    slot index; two prefixes where one is the other plus a digit can
    collide once ``k`` reaches double digits (e.g. slot 1's ``x1``
    array vs slot 11's ``x`` scalar, both rendering as ``x11``). The
    full Figure-7 legend on mesa compiles 12+ classes in one loop with
    Markov tables in the low slots and a stride class past index 10,
    and mesa's miss stream drives every one of their paths.
    """
    from repro.analysis.figures import figure7_configs

    specs = [
        RunSpec.of("mesa", config.mechanism, scale=SCALE,
                   **config.factory_params())
        for config in figure7_configs()
    ]
    assert len(specs) >= 12
    differential.check_batch(specs)
