"""Warm-start differential: trained instances on the fast path.

The fast engine now *continues* a trained mechanism instead of
refusing it: it seeds its flat tables from the instance's canonical
snapshot and restores the final state afterwards. These tests demand
full observational equivalence for every mechanism family — identical
statistics on a second stream *and* identical canonical state digests
after any interleaving of engines — plus bit-identity between chunked
:class:`~repro.ckpt.ReplaySession` streaming (with a serialize/resume
round-trip mid-stream) and a one-shot replay.
"""

from __future__ import annotations

import pytest

from repro.ckpt import ReplaySession, SessionSnapshot, snapshot_prefetcher
from repro.prefetch.factory import create_prefetcher
from repro.run import MissStreamCache, Runner
from repro.sim.engine import resolve_engine
from repro.sim.fastpath import replay_fast
from repro.sim.two_phase import replay_prefetcher

from tests.differential.harness import assert_identical

SCALE = 0.05

#: Every family the fast engine replays, with small tables so state
#: actually churns (evictions, LRU promotions) at this trace scale.
FAMILIES: list[tuple[str, dict]] = [
    ("none", {}),
    ("SP", {}),
    ("SP-adaptive", {}),
    ("ASP", {"rows": 64, "ways": 2}),
    ("MP", {"rows": 64}),
    ("DP", {"rows": 64}),
    ("DP-PC", {"rows": 64, "ways": 2}),
    ("DP-2", {"rows": 64, "ways": 2}),
    ("RP", {}),
    ("RP", {"variant_three": 1}),
]

FAMILY_IDS = [
    f"{name}{''.join(f'-{k}{v}' for k, v in params.items())}"
    for name, params in FAMILIES
]


@pytest.fixture(scope="module")
def streams():
    runner = Runner(cache=MissStreamCache())
    return (
        runner.miss_stream("galgel", scale=SCALE),
        runner.miss_stream("eon", scale=SCALE),
    )


@pytest.mark.parametrize(("name", "params"), FAMILIES, ids=FAMILY_IDS)
def test_warm_instances_bit_identical(streams, name, params):
    """Train on stream A, then replay stream B on each engine: the
    warm second replay must agree on stats and on final state."""
    first, second = streams
    ref_p = create_prefetcher(name, **params)
    fast_p = create_prefetcher(name, **params)
    warm_ref = replay_prefetcher(first, ref_p)
    warm_fast = replay_fast(first, fast_p)
    assert_identical(warm_ref, warm_fast, context=f"{name} cold run")
    again_ref = replay_prefetcher(second, ref_p)
    again_fast = replay_fast(second, fast_p)
    assert_identical(again_ref, again_fast, context=f"{name} warm run")
    assert (
        snapshot_prefetcher(ref_p).digest()
        == snapshot_prefetcher(fast_p).digest()
    ), f"{name}: engines disagree on final canonical state"


@pytest.mark.parametrize(("name", "params"), FAMILIES, ids=FAMILY_IDS)
def test_engine_interleaving_order_is_irrelevant(streams, name, params):
    """fast-then-reference and reference-then-fast land on the same
    canonical state as reference-only: engines are interchangeable
    mid-sequence."""
    first, second = streams
    digests = []
    for engines in (
        (replay_prefetcher, replay_prefetcher),
        (replay_fast, replay_prefetcher),
        (replay_prefetcher, replay_fast),
        (replay_fast, replay_fast),
    ):
        p = create_prefetcher(name, **params)
        engines[0](first, p)
        engines[1](second, p)
        digests.append(snapshot_prefetcher(p).digest())
    assert len(set(digests)) == 1, f"{name}: order-dependent state {digests}"


@pytest.mark.parametrize(("name", "params"), FAMILIES, ids=FAMILY_IDS)
def test_chunked_session_matches_one_shot(streams, name, params):
    """ReplaySession in uneven chunks — serialized to bytes and resumed
    into a fresh instance mid-stream — equals a one-shot replay."""
    stream = streams[0]
    one_shot = replay_prefetcher(stream, create_prefetcher(name, **params))
    session = ReplaySession(stream, create_prefetcher(name, **params))
    chunk_sizes = iter((1, 97, 1024, 7, 400000))
    while not session.finished:
        session.advance(next(chunk_sizes, None))
        blob = session.snapshot().to_bytes()
        snap = SessionSnapshot.from_bytes(blob)
        session = ReplaySession.resume(
            snap, stream, create_prefetcher(name, **params)
        )
    assert_identical(one_shot, session.stats(), context=f"{name} chunked")


def test_auto_resolves_fast_for_trained_instances(streams):
    for name, params in FAMILIES:
        p = create_prefetcher(name, **params)
        replay_prefetcher(streams[0], p)
        assert resolve_engine(p, "auto") == "fast", name
