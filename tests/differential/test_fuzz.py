"""Randomized differential fuzzing: both engines, any scenario.

Hypothesis generates random RLE traces, mechanism configurations and
engine knobs (seeded and shrinkable — a failure replays and minimizes
deterministically), and every example must produce bit-identical
statistics on both engines. The budget is tunable for CI:

- ``DIFF_FUZZ_EXAMPLES``       — trace-level examples (default 200)
- ``DIFF_FUZZ_SPEC_EXAMPLES``  — registry-spec examples (default 25)

Run a fixed-seed short budget (the CI ``differential-smoke`` job)
with::

    DIFF_FUZZ_EXAMPLES=60 python -m pytest tests/differential -q \
        --hypothesis-seed=2002
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.trace import ReferenceTrace
from repro.prefetch.factory import create_prefetcher
from repro.run import RunSpec
from repro.sim.config import SimulationConfig, TLBConfig

from tests.differential.harness import DifferentialRunner, fresh_factory

TRACE_EXAMPLES = int(os.environ.get("DIFF_FUZZ_EXAMPLES", "200"))
SPEC_EXAMPLES = int(os.environ.get("DIFF_FUZZ_SPEC_EXAMPLES", "25"))

#: Shared across examples so registry miss streams filter only once.
_DIFFERENTIAL = DifferentialRunner()


@st.composite
def mechanism_configs(draw) -> tuple[str, dict]:
    """A mechanism name plus randomized (always-valid) parameters."""
    name = draw(
        st.sampled_from(
            ["none", "SP", "SP-adaptive", "ASP", "MP", "RP", "DP", "DP-PC", "DP-2"]
        )
    )
    params: dict[str, int] = {}
    if name == "SP":
        params["degree"] = draw(st.integers(1, 4))
    elif name == "SP-adaptive":
        params["max_degree"] = draw(st.sampled_from([2, 8]))
        params["window"] = draw(st.sampled_from([4, 16]))
    elif name == "RP":
        params["variant_three"] = draw(st.integers(0, 1))
    elif name in ("ASP", "MP", "DP", "DP-PC", "DP-2"):
        params["rows"] = draw(st.sampled_from([8, 16, 64]))
        params["ways"] = draw(st.sampled_from([1, 2, 4, 0]))
        if name != "ASP":
            params["slots"] = draw(st.integers(1, 3))
    return name, params


@st.composite
def rle_traces(draw) -> ReferenceTrace:
    """Small random run-length-encoded traces with a few distinct PCs."""
    n = draw(st.integers(min_value=1, max_value=80))
    pcs = draw(st.lists(st.integers(0, 6), min_size=n, max_size=n))
    pages = draw(st.lists(st.integers(0, 30), min_size=n, max_size=n))
    counts = draw(st.lists(st.integers(1, 4), min_size=n, max_size=n))
    return ReferenceTrace(pcs, pages, counts, name="fuzz")


@st.composite
def sim_configs(draw) -> SimulationConfig:
    entries = draw(st.sampled_from([4, 8]))
    ways = draw(st.sampled_from([0, 2]))
    return SimulationConfig(
        tlb=TLBConfig(entries=entries, ways=ways),
        buffer_entries=draw(st.sampled_from([1, 2, 4, 16])),
        warmup_fraction=draw(st.sampled_from([0.0, 0.25, 0.5])),
        max_prefetches_per_miss=draw(st.sampled_from([0, 1, 2, 3])),
    )


@settings(max_examples=TRACE_EXAMPLES, deadline=None)
@given(trace=rle_traces(), mechanism=mechanism_configs(), config=sim_configs())
def test_fuzz_traces_bit_identical(trace, mechanism, config):
    """Random trace × random mechanism × random knobs: engines agree."""
    name, params = mechanism
    _DIFFERENTIAL.check_trace(
        trace, fresh_factory(create_prefetcher, name, **params), config
    )


@settings(max_examples=SPEC_EXAMPLES, deadline=None)
@given(
    workload=st.sampled_from(["galgel", "epic", "anagram", "perl4"]),
    mechanism=mechanism_configs(),
    tlb_entries=st.sampled_from([32, 64]),
    page_size=st.sampled_from([4096, 8192]),
    buffer_entries=st.sampled_from([4, 16]),
    clamp=st.sampled_from([0, 2]),
    warmup=st.sampled_from([0.0, 0.2]),
)
def test_fuzz_specs_bit_identical(
    workload, mechanism, tlb_entries, page_size, buffer_entries, clamp, warmup
):
    """Random RunSpecs over real registry workloads: engines agree."""
    name, params = mechanism
    spec = RunSpec.of(
        workload,
        name,
        scale=0.02,
        tlb=TLBConfig(entries=tlb_entries),
        page_size=page_size,
        buffer_entries=buffer_entries,
        max_prefetches_per_miss=clamp,
        warmup_fraction=warmup,
        **params,
    )
    _DIFFERENTIAL.check_spec(spec)
