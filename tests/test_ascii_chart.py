"""Unit tests for the ASCII chart and table renderers."""

from repro.analysis.ascii_chart import bar, format_table, grouped_bars


class TestBar:
    def test_full_and_empty(self):
        assert bar(1.0, width=10) == "#" * 10
        assert bar(0.0, width=10) == " " * 10

    def test_half(self):
        rendered = bar(0.5, width=10)
        assert rendered.count("#") == 5
        assert len(rendered) == 10

    def test_clamps_out_of_range(self):
        assert bar(1.5, width=4) == "####"
        assert bar(-0.5, width=4) == "    "


class TestGroupedBars:
    def test_structure(self):
        text = grouped_bars(
            {"app1": {"DP": 0.9, "RP": 0.5}},
            title="Figure X",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure X"
        assert any("app1:" in line for line in lines)
        assert any("DP" in line and "0.900" in line for line in lines)

    def test_series_order_respected(self):
        text = grouped_bars(
            {"a": {"X": 0.1, "Y": 0.2}}, series_order=["Y", "X"]
        )
        y_pos = text.index(" Y")
        x_pos = text.index(" X")
        assert y_pos < x_pos

    def test_missing_series_skipped(self):
        text = grouped_bars({"a": {"X": 0.1}}, series_order=["X", "Z"])
        assert "Z" not in text


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"], [["a", 0.5], ["long-name", 1.0]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.50" in text
        assert "1.00" in text
        # All rows padded to the same width as headers row.
        assert len(lines[2].rstrip()) <= len(lines[0]) + 12

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format="{:.4f}")
        assert "0.1235" in text
