"""Unit tests for Recency Prefetching (RP)."""

from repro.prefetch.base import NO_EVICTION
from repro.prefetch.recency import RecencyPrefetcher


class TestStackMaintenance:
    def test_eviction_pushed_on_stack(self):
        rp = RecencyPrefetcher()
        rp.on_miss(0, 10, 5, False)   # page 10 missed, page 5 evicted
        assert rp.stack.top == 5

    def test_no_eviction_no_push(self):
        rp = RecencyPrefetcher()
        rp.on_miss(0, 10, NO_EVICTION, False)
        assert rp.stack.top is None
        assert rp.last_overhead_ops == 0

    def test_missed_page_unlinked_from_stack(self):
        rp = RecencyPrefetcher()
        rp.on_miss(0, 1, 100, False)
        rp.on_miss(0, 2, 101, False)
        rp.on_miss(0, 3, 102, False)
        assert rp.stack.walk() == [102, 101, 100]
        rp.on_miss(0, 101, 103, False)  # 101 re-referenced
        assert 101 not in rp.stack
        assert rp.stack.walk() == [103, 102, 100]

    def test_overhead_ops_accounting(self):
        rp = RecencyPrefetcher()
        # Page not on stack, with an eviction: push only (2 ops).
        rp.on_miss(0, 10, 100, False)
        assert rp.last_overhead_ops == 2
        # Page on stack and an eviction: unlink + push (4 ops).
        rp.on_miss(0, 100, 101, False)
        assert rp.last_overhead_ops == 4
        assert rp.overhead_ops_total == 6


class TestPrefetching:
    def test_prefetches_stack_neighbors(self):
        rp = RecencyPrefetcher()
        # Build a stack: 102 (top), 101, 100.
        rp.on_miss(0, 1, 100, False)
        rp.on_miss(0, 2, 101, False)
        rp.on_miss(0, 3, 102, False)
        prefetches = rp.on_miss(0, 101, NO_EVICTION, False)
        assert sorted(prefetches) == [100, 102]

    def test_first_touch_prefetches_nothing(self):
        rp = RecencyPrefetcher()
        assert rp.on_miss(0, 42, NO_EVICTION, False) == []

    def test_cyclic_scan_predicts_next_page(self):
        """On a cyclic sequential sweep the stack reconstructs eviction
        order, so the missed page's neighbour is the next page — the
        reason RP tracks galgel-class apps (paper Section 3.2)."""
        rp = RecencyPrefetcher()
        capacity = 4
        pages = list(range(10))
        # Simulate the eviction pattern of a 4-entry LRU TLB over two
        # sweeps: miss p evicts p-4 (mod 10).
        for sweep in range(3):
            for page in pages:
                evicted = (page - capacity) % 10 if sweep or page >= capacity else NO_EVICTION
                prefetches = rp.on_miss(0, page, evicted, False)
                if sweep == 2:
                    assert (page + 1) % 10 in prefetches

    def test_variant_three_prefetches_extra_entry(self):
        rp = RecencyPrefetcher(variant_three=True)
        rp.on_miss(0, 1, 100, False)
        rp.on_miss(0, 2, 101, False)
        rp.on_miss(0, 3, 102, False)
        prefetches = rp.on_miss(0, 101, NO_EVICTION, False)
        # prev=102, next=100, and one below next would be None (100 is
        # bottom) -> exactly the two plus nothing, so try deeper stack.
        assert sorted(prefetches) == [100, 102]
        rp2 = RecencyPrefetcher(variant_three=True)
        for page, evicted in ((1, 100), (2, 101), (3, 102), (4, 103)):
            rp2.on_miss(0, page, evicted, False)
        prefetches = rp2.on_miss(0, 102, NO_EVICTION, False)
        # Neighbours 103/101 plus 101's below-neighbour 100.
        assert sorted(prefetches) == [100, 101, 103]

    def test_shared_page_table(self):
        from repro.tlb.page_table import PageTable

        table = PageTable()
        rp = RecencyPrefetcher(page_table=table)
        rp.on_miss(0, 10, 5, False)
        assert 5 in table

    def test_flush_is_noop(self):
        rp = RecencyPrefetcher()
        rp.on_miss(0, 10, 5, False)
        rp.flush()
        assert rp.stack.top == 5  # in-memory state survives switches


class TestMetadata:
    def test_labels(self):
        assert RecencyPrefetcher().label == "RP"
        assert RecencyPrefetcher(variant_three=True).label == "RP3"

    def test_hardware_description(self):
        desc = RecencyPrefetcher().describe_hardware()
        assert desc.location == "In Memory"
        assert desc.memory_ops_per_miss == 4
        assert desc.rows == "No. of PTEs"
