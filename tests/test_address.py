"""Unit tests for page arithmetic and address-space regions."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.address import (
    AddressSpace,
    page_of,
    page_shift_for_size,
    rescale_page,
)


class TestPageShift:
    def test_common_sizes(self):
        assert page_shift_for_size(4096) == 12
        assert page_shift_for_size(8192) == 13
        assert page_shift_for_size(65536) == 16

    @pytest.mark.parametrize("bad", [0, -4096, 3000, 4097])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ConfigurationError):
            page_shift_for_size(bad)


class TestPageOf:
    def test_first_page(self):
        assert page_of(0) == 0
        assert page_of(4095) == 0

    def test_boundary(self):
        assert page_of(4096) == 1

    def test_other_page_size(self):
        assert page_of(8192, page_size=8192) == 1
        assert page_of(8191, page_size=8192) == 0


class TestRescalePage:
    def test_identity_at_4k(self):
        assert rescale_page(37, 4096) == 37

    def test_8k_halves(self):
        assert rescale_page(10, 8192) == 5
        assert rescale_page(11, 8192) == 5

    def test_64k_groups_sixteen(self):
        assert rescale_page(15, 65536) == 0
        assert rescale_page(16, 65536) == 1

    def test_rejects_sub_4k(self):
        with pytest.raises(ConfigurationError):
            rescale_page(1, 2048)


class TestAddressSpace:
    def test_basic_properties(self):
        region = AddressSpace(base_page=100, num_pages=50)
        assert region.end_page == 150
        assert region.page(0) == 100
        assert region.page(-1) == 149
        assert region.contains(100)
        assert region.contains(149)
        assert not region.contains(150)

    def test_page_out_of_range(self):
        region = AddressSpace(0, 10)
        with pytest.raises(IndexError):
            region.page(10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AddressSpace(-1, 10)
        with pytest.raises(ConfigurationError):
            AddressSpace(0, 0)

    def test_split_consecutive_and_covering(self):
        region = AddressSpace(0, 100)
        parts = region.split(0.25, 0.25)
        assert parts[0].base_page == 0
        assert parts[1].base_page == parts[0].end_page
        # Remainder appended as final region.
        assert parts[-1].end_page == 100
        assert sum(p.num_pages for p in parts) == 100

    def test_split_validation(self):
        with pytest.raises(ConfigurationError):
            AddressSpace(0, 10).split(0.8, 0.5)
        with pytest.raises(ConfigurationError):
            AddressSpace(0, 10).split(-0.1)
