"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mem.trace import ReferenceTrace
from repro.prefetch.base import NO_EVICTION, Prefetcher


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


def make_trace(
    pages: list[int],
    pcs: list[int] | None = None,
    counts: list[int] | None = None,
    name: str = "test",
) -> ReferenceTrace:
    """Build a small reference trace from plain lists."""
    n = len(pages)
    return ReferenceTrace(
        pcs if pcs is not None else [0x1000] * n,
        pages,
        counts if counts is not None else [1] * n,
        name=name,
    )


def drive_misses(
    prefetcher: Prefetcher,
    pages: list[int],
    pcs: list[int] | None = None,
    evicted: list[int] | None = None,
) -> list[list[int]]:
    """Feed a raw miss sequence to a mechanism; return its prefetches.

    A low-level harness for unit-testing mechanism logic without a TLB
    or prefetch buffer in the way (``pb_hit`` is always False).
    """
    n = len(pages)
    pcs = pcs if pcs is not None else [0x1000] * n
    evicted = evicted if evicted is not None else [NO_EVICTION] * n
    return [
        prefetcher.on_miss(pcs[i], pages[i], evicted[i], False) for i in range(n)
    ]
