"""Golden-file regression tests: the paper numbers, frozen on disk.

``tests/golden/*.json`` are :meth:`ResultSet.save` outputs for the
canonical RunSpecs below, produced by the *reference* engine. The
tests re-run those specs — on the reference engine, the fast engine
AND the one-pass batch engine — and fail loudly on any row that
drifts, so an engine or mechanism change that shifts paper numbers
cannot land silently.

When a change is *supposed* to shift numbers (a modeled-behaviour fix,
never an optimization), regenerate with::

    PYTHONPATH=src python tests/test_golden.py --regen

and justify the diff in the commit message.
"""

from __future__ import annotations

import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.run import MissStreamCache, ResultSet, Runner, RunSpec

GOLDEN_DIR = Path(__file__).parent / "golden"

SCALE = 0.05

#: The canonical grid: the Table-2 head-to-head four plus the
#: stateless baseline, over three behaviour-diverse workloads.
CANONICAL_SPECS = [
    RunSpec.of(app, mechanism, scale=SCALE)
    for app in ("galgel", "swim", "eon")
    for mechanism in ("DP", "RP", "ASP", "MP", "SP")
]

#: The superpage axis: DP and RP at 8 KiB and 16 KiB pages.
SUPERPAGE_SPECS = [
    RunSpec.of("galgel", mechanism, scale=SCALE, page_size=page_size)
    for mechanism in ("DP", "RP")
    for page_size in (8192, 16384)
]

GOLDEN_FILES: dict[str, list[RunSpec]] = {
    "canonical_grid.json": CANONICAL_SPECS,
    "superpages.json": SUPERPAGE_SPECS,
}


def _run(specs: list[RunSpec], engine: str) -> ResultSet:
    return Runner(cache=MissStreamCache()).run(
        [spec.derive(engine=engine) for spec in specs]
    )


@pytest.mark.parametrize("filename", sorted(GOLDEN_FILES))
@pytest.mark.parametrize("engine", ["reference", "fast", "batch"])
def test_results_match_golden(filename, engine):
    path = GOLDEN_DIR / filename
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "`PYTHONPATH=src python tests/test_golden.py --regen`"
    )
    golden = ResultSet.load(path)
    rerun = _run(GOLDEN_FILES[filename], engine)
    assert len(golden) == len(rerun)
    for golden_row, rerun_row in zip(golden, rerun):
        if asdict(golden_row) != asdict(rerun_row):
            diffs = {
                key: (value, asdict(rerun_row)[key])
                for key, value in asdict(golden_row).items()
                if asdict(rerun_row)[key] != value
            }
            raise AssertionError(
                f"{filename}: {golden_row.workload}/{golden_row.mechanism} "
                f"drifted on engine={engine} (golden, rerun): {diffs}\n"
                "If this shift is intended, regenerate with "
                "`PYTHONPATH=src python tests/test_golden.py --regen` and "
                "explain why in the commit."
            )
    assert golden.to_json() == rerun.to_json()


def test_golden_rows_carry_spec_keys():
    """Goldens must be joinable by content-addressed spec key."""
    golden = ResultSet.load(GOLDEN_DIR / "canonical_grid.json")
    saved_keys = [run.extra["spec_key"] for run in golden]
    assert saved_keys == [spec.key() for spec in CANONICAL_SPECS]


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for filename, specs in GOLDEN_FILES.items():
        path = _run(specs, "reference").save(GOLDEN_DIR / filename)
        print(f"wrote {path} ({len(specs)} runs)")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        sys.exit(2)
