"""Tests for the multiprogrammed (context-switching) study."""

import pytest

from repro.errors import ConfigurationError
from repro.prefetch.factory import create_prefetcher
from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.multiprog import (
    FLUSH_POLICIES,
    compare_policies,
    simulate_multiprogrammed,
)
from repro.workloads.registry import get_trace

from conftest import make_trace


def _dp_factory():
    return create_prefetcher("DP", rows=256)


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ConfigurationError):
            simulate_multiprogrammed([make_trace([1])], _dp_factory, policy="bogus")

    def test_bad_quantum(self):
        with pytest.raises(ConfigurationError):
            simulate_multiprogrammed([make_trace([1])], _dp_factory, quantum=0)

    def test_no_traces(self):
        with pytest.raises(ConfigurationError):
            simulate_multiprogrammed([], _dp_factory)


class TestScheduling:
    def test_single_process_no_switches(self):
        trace = make_trace(list(range(100)))
        stats = simulate_multiprogrammed([trace], _dp_factory, quantum=10)
        assert stats.context_switches == 0
        assert stats.total_references == 100

    def test_two_processes_switch(self):
        traces = [make_trace(list(range(50))), make_trace(list(range(50)))]
        stats = simulate_multiprogrammed(traces, _dp_factory, quantum=10)
        assert stats.context_switches >= 9
        assert stats.total_references == 100

    def test_address_spaces_disjoint(self):
        """Identical page numbers in different processes must not share
        TLB entries: every quantum restart re-misses its pages."""
        traces = [make_trace([1, 1, 1]), make_trace([1, 1, 1])]
        stats = simulate_multiprogrammed(
            traces, _dp_factory, quantum=100,
            config=SimulationConfig(tlb=TLBConfig(entries=64)),
        )
        # One compulsory miss per process despite equal page numbers.
        assert stats.tlb_misses == 2


class TestPolicies:
    @pytest.fixture(scope="class")
    def mixes(self):
        return [get_trace("galgel", 0.05), get_trace("facerec", 0.05)]

    def test_all_policies_run(self, mixes):
        results = compare_policies(mixes, _dp_factory, quantum=5000)
        assert set(results) == set(FLUSH_POLICIES)
        for stats in results.values():
            assert 0.0 <= stats.prediction_accuracy <= 1.0
            assert stats.context_switches > 0

    def test_per_process_at_least_as_good_as_flush(self, mixes):
        """Saved/restored tables never lose to cold-started ones on
        strided workloads (warm state survives the switch)."""
        results = compare_policies(mixes, _dp_factory, quantum=5000)
        assert (
            results["per_process"].prediction_accuracy
            >= results["flush"].prediction_accuracy - 0.02
        )

    def test_rp_policy_invariant(self, mixes):
        """RP's state lives in per-process page tables, so the flush
        policy must not change its accuracy."""
        results = compare_policies(
            mixes, lambda: create_prefetcher("RP"), quantum=5000
        )
        accuracies = {s.prediction_accuracy for s in results.values()}
        assert max(accuracies) - min(accuracies) < 1e-9
