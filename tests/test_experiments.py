"""Tests for the experiment orchestrator and figure configurations."""

import pytest

from repro.analysis.experiments import TABLE2_MECHANISMS, ExperimentContext
from repro.analysis.figures import (
    ASSOC_WAYS,
    FIGURE9_BUFFERS,
    FIGURE9_SLOTS,
    FIGURE9_TLBS,
    MechanismConfig,
    figure7_configs,
    figure9_table_configs,
)
from repro.sim.config import TLBConfig


class TestFigureConfigs:
    def test_figure7_legend_matches_paper(self):
        labels = [c.label for c in figure7_configs()]
        assert labels[0] == "RP"
        assert "MP,1024,D" in labels
        assert "MP,256,F" in labels
        assert "DP,32,D" in labels
        assert "ASP,1024" in labels
        # 1 RP + 8 MP + 6 DP + 6 ASP bars.
        assert len(labels) == 21

    def test_figure9_table_legend(self):
        labels = [c.label for c in figure9_table_configs()]
        assert labels[0] == "DP,1024,D"
        assert "DP,32,F" in labels
        assert len(labels) == 14

    def test_factory_params_map_assoc(self):
        config = MechanismConfig("MP", 512, "4")
        assert config.factory_params() == {"rows": 512, "ways": 4, "slots": 2}
        assert ASSOC_WAYS["F"] == 0

    def test_panel_constants(self):
        assert FIGURE9_SLOTS == (2, 4, 6)
        assert FIGURE9_BUFFERS == (16, 32, 64)
        assert FIGURE9_TLBS == (64, 128, 256)


@pytest.fixture(scope="module")
def context() -> ExperimentContext:
    return ExperimentContext(scale=0.05)


class TestExperimentContext:
    def test_miss_trace_cached_per_tlb_config(self, context):
        first = context.miss_trace("eon")
        assert context.miss_trace("eon") is first
        other = context.miss_trace("eon", TLBConfig(entries=64))
        assert other is not first

    def test_run_table1_mentions_all_mechanisms(self, context):
        table = context.run_table1()
        for name in ("ASP", "MP", "RP", "DP"):
            assert name in table
        assert "Distance" in table
        assert "In Memory" in table

    def test_run_figure_on_subset(self, context):
        configs = [MechanismConfig("DP", 64, "D"), MechanismConfig("RP")]
        results = context.run_figure(["galgel", "eon"], configs)
        assert set(results) == {"galgel", "eon"}
        assert set(results["galgel"]) == {"DP,64,D", "RP"}
        assert results["galgel"]["DP,64,D"] > 0.9

    def test_run_table2_structure(self, context):
        summary = context.run_table2(apps=["galgel", "swim", "eon"])
        assert set(summary) == set(TABLE2_MECHANISMS)
        for values in summary.values():
            assert 0.0 <= values["average"] <= 1.0
            assert 0.0 <= values["weighted"] <= 1.0
        rendered = context.render_table2(summary)
        assert "DP" in rendered

    def test_run_table3_structure(self, context):
        results = context.run_table3(apps=["ammp"])
        assert set(results) == {"ammp"}
        assert set(results["ammp"]) == {"RP", "DP"}
        rendered = context.render_table3(results)
        assert "ammp" in rendered

    def test_figure9_panels_run(self, context):
        slots = context.run_figure9_slots()
        assert set(next(iter(slots.values()))) == {"s = 2", "s = 4", "s = 6"}
        buffers = context.run_figure9_buffers()
        assert set(next(iter(buffers.values()))) == {"b = 16", "b = 32", "b = 64"}
        tlbs = context.run_figure9_tlbs()
        assert set(next(iter(tlbs.values()))) == {
            "64-entry TLB", "128-entry TLB", "256-entry TLB",
        }

    def test_render_figure(self, context):
        results = context.run_figure(["eon"], [MechanismConfig("RP")])
        text = context.render_figure(results, "Title")
        assert "Title" in text
        assert "eon:" in text
