"""Unit tests for the persistent experiment store.

Contracts under test: content-addressed round-trips for results and
miss streams, persistence across store instances (i.e. processes),
schema versioning, hit/miss/bytes accounting, and size-bounded LRU
garbage collection.
"""

import json
import sqlite3

import pytest

from repro.errors import StoreError
from repro.run import MissStreamCache, Runner, RunSpec
from repro.store import (
    STORE_SCHEMA,
    ExperimentStore,
    stream_digest_for_spec,
    stream_digest_for_trace,
)
from repro.sim.config import TLBConfig

SCALE = 0.05


def spec_of(app="galgel", mechanism="DP", **kwargs):
    kwargs.setdefault("scale", SCALE)
    return RunSpec.of(app, mechanism, **kwargs)


def run_one(spec):
    return Runner(cache=MissStreamCache()).run_one(spec)


class TestResultRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        stats = run_one(spec)
        key = store.put_result(spec, stats)
        assert key == spec.key()
        assert store.get_result(key) == stats

    def test_missing_key_is_none(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        assert store.get_result("0" * 16) is None

    def test_has_result_probe_does_not_touch_counters(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        assert not store.has_result(spec.key())
        store.put_result(spec, run_one(spec))
        assert store.has_result(spec.key())
        stats = store.stats()
        assert stats["result_hits"] == 0
        assert stats["result_misses"] == 0

    def test_persists_across_instances(self, tmp_path):
        spec = spec_of()
        stats = run_one(spec)
        ExperimentStore(tmp_path / "store").put_result(spec, stats)
        reopened = ExperimentStore(tmp_path / "store")
        assert reopened.get_result(spec.key()) == stats

    def test_put_is_idempotent_one_copy(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        stats = run_one(spec)
        store.put_result(spec, stats)
        store.put_result(spec, stats)
        assert store.stats()["result_entries"] == 1
        assert len(list((tmp_path / "store" / "results").glob("*.json"))) == 1

    def test_artifact_is_valid_versioned_json(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        store.put_result(spec, run_one(spec))
        artifact = tmp_path / "store" / "results" / f"{spec.key()}.json"
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == STORE_SCHEMA
        assert payload["key"] == spec.key()
        assert payload["spec"]["workload"] == "galgel"
        assert RunSpec.from_dict(payload["spec"]).key() == spec.key()

    def test_load_results_returns_everything(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        specs = [spec_of(mechanism=m) for m in ("DP", "RP", "ASP")]
        store.put_results((spec, run_one(spec)) for spec in specs)
        results = store.load_results()
        assert len(results) == 3
        assert {run.extra["spec_key"] for run in results} == {
            spec.key() for spec in specs
        }


class TestStreamRoundTrip:
    def test_put_then_get_replays_identically(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        runner = Runner(cache=MissStreamCache())
        built = runner.miss_stream_for(spec)
        digest = stream_digest_for_spec(spec)
        store.put_stream(digest, built)
        loaded = store.get_stream(digest)
        assert loaded is not None
        assert loaded.as_lists() == built.as_lists()
        assert loaded.name == built.name
        assert loaded.total_references == built.total_references
        assert loaded.warmup_misses == built.warmup_misses

    def test_stream_digests_separate_tlb_shapes(self):
        assert stream_digest_for_spec(spec_of()) != stream_digest_for_spec(
            spec_of(tlb=TLBConfig(entries=64))
        )
        assert stream_digest_for_trace("abc", TLBConfig(), 0.0) != (
            stream_digest_for_trace("abc", TLBConfig(entries=64), 0.0)
        )

    def test_missing_stream_is_none(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        assert store.get_stream("f" * 24) is None


class TestAccounting:
    def test_hit_miss_counters(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        assert store.get_result(spec.key()) is None
        store.put_result(spec, run_one(spec))
        store.get_result(spec.key())
        stats = store.stats()
        assert stats["result_misses"] == 1
        assert stats["result_hits"] == 1
        assert stats["bytes_written"] > 0
        assert stats["bytes_read"] > 0

    def test_counters_persist_across_instances(self, tmp_path):
        spec = spec_of()
        store = ExperimentStore(tmp_path / "store")
        store.put_result(spec, run_one(spec))
        store.get_result(spec.key())
        reopened = ExperimentStore(tmp_path / "store")
        assert reopened.stats()["result_hits"] == 1

    def test_entries_listing(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        store.put_result(spec, run_one(spec))
        (entry,) = store.entries()
        assert entry["kind"] == "result"
        assert entry["key"] == spec.key()
        assert entry["workload"] == "galgel"
        assert entry["size_bytes"] > 0
        assert store.entries(kind="stream") == []
        with pytest.raises(StoreError):
            store.entries(kind="banana")


class TestSchemaVersioning:
    def test_rejects_other_schema(self, tmp_path):
        root = tmp_path / "store"
        ExperimentStore(root).close()
        db = sqlite3.connect(root / "index.sqlite")
        db.execute("UPDATE meta SET value='repro.store/v0' WHERE key='schema'")
        db.commit()
        db.close()
        with pytest.raises(StoreError, match="repro.store/v0"):
            ExperimentStore(root)

    def test_rejects_artifact_with_other_schema(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        store.put_result(spec, run_one(spec))
        artifact = tmp_path / "store" / "results" / f"{spec.key()}.json"
        payload = json.loads(artifact.read_text())
        payload["schema"] = "repro.store/v99"
        artifact.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="v99"):
            store.get_result(spec.key())

    def test_root_must_be_a_directory(self, tmp_path):
        target = tmp_path / "afile"
        target.write_text("hello")
        with pytest.raises(StoreError, match="not a directory"):
            ExperimentStore(target)


class TestGarbageCollection:
    def _filled(self, tmp_path, count=3):
        store = ExperimentStore(tmp_path / "store")
        specs = [spec_of(mechanism=m) for m in ("DP", "RP", "ASP", "MP")[:count]]
        for spec in specs:
            store.put_result(spec, run_one(spec))
        return store, specs

    def test_gc_to_zero_empties_store(self, tmp_path):
        store, _ = self._filled(tmp_path)
        report = store.gc(max_bytes=0)
        assert report["evicted"] == 3
        assert report["total_bytes"] == 0
        assert store.stats()["result_entries"] == 0
        assert store.stats()["evictions"] == 3
        assert list((tmp_path / "store" / "results").glob("*.json")) == []

    def test_gc_evicts_least_recently_used_first(self, tmp_path):
        store, specs = self._filled(tmp_path)
        store.get_result(specs[0].key())  # freshen the first entry
        sizes = {e["key"]: e["size_bytes"] for e in store.entries()}
        keep_budget = sizes[specs[0].key()]
        store.gc(max_bytes=keep_budget)
        remaining = [e["key"] for e in store.entries()]
        assert remaining == [specs[0].key()]

    def test_gc_order_deterministic_under_frozen_clock(self, tmp_path, monkeypatch):
        """LRU recency is a persistent counter, not wall-clock time:
        with the clock frozen (coarse ticks, identical timestamps) the
        eviction order must still follow access order exactly."""
        from repro.store import store as store_module

        monkeypatch.setattr(store_module.time, "time", lambda: 1.7e9)
        store, specs = self._filled(tmp_path, count=4)
        store.get_result(specs[2].key())
        store.get_result(specs[0].key())
        sizes = {e["key"]: e["size_bytes"] for e in store.entries()}
        budget = sizes[specs[0].key()] + sizes[specs[2].key()]
        store.gc(max_bytes=budget)
        remaining = {e["key"] for e in store.entries()}
        assert remaining == {specs[0].key(), specs[2].key()}

    def test_gc_order_survives_clock_stepping_backwards(self, tmp_path, monkeypatch):
        """An NTP step must not reorder recency: entries touched after
        the clock jumps back stay the most recently used."""
        from repro.store import store as store_module

        clock = {"now": 1.7e9}
        monkeypatch.setattr(store_module.time, "time", lambda: clock["now"])
        store, specs = self._filled(tmp_path, count=3)
        clock["now"] -= 3600.0  # NTP steps the clock an hour back...
        store.get_result(specs[1].key())  # ...then the MRU touch lands
        sizes = {e["key"]: e["size_bytes"] for e in store.entries()}
        store.gc(max_bytes=sizes[specs[1].key()])
        remaining = [e["key"] for e in store.entries()]
        assert remaining == [specs[1].key()]

    def test_gc_without_budget_is_a_no_op(self, tmp_path):
        store, _ = self._filled(tmp_path)
        report = store.gc()
        assert report["evicted"] == 0
        assert store.stats()["result_entries"] == 3

    def test_max_bytes_bounds_the_store_automatically(self, tmp_path):
        store = ExperimentStore(tmp_path / "store", max_bytes=1)
        for mechanism in ("DP", "RP", "ASP"):
            spec = spec_of(mechanism=mechanism)
            store.put_result(spec, run_one(spec))
        assert store.stats()["result_entries"] == 0
        assert store.stats()["evictions"] == 3

    def test_gc_sweeps_stale_tmp_files_but_spares_fresh_ones(self, tmp_path):
        import os
        import time

        store, _ = self._filled(tmp_path, count=1)
        results_dir = tmp_path / "store" / "results"
        stale = results_dir / ".dead.123.0.tmp"
        stale.write_bytes(b"partial")
        old = time.time() - 7200  # well past the sweep age threshold
        os.utime(stale, (old, old))
        fresh = results_dir / ".inflight.456.0.tmp"
        fresh.write_bytes(b"being written right now")
        store.gc()
        assert not stale.exists()  # abandoned by a crashed writer: swept
        assert fresh.exists()  # may be a live writer's rename window: kept

    def test_evicted_result_is_an_honest_miss(self, tmp_path):
        store, specs = self._filled(tmp_path, count=1)
        store.gc(max_bytes=0)
        assert store.get_result(specs[0].key()) is None
