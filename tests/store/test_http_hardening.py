"""Raw-socket regression tests for hostile request framing.

``urllib`` can't send a malformed ``Content-Length``, so these tests
write HTTP/1.1 requests straight onto the socket and assert the server
answers with a structured error envelope — not an unhandled exception
in the handler thread (which surfaces as a dropped connection).
"""

import json
import socket
import threading

import pytest

from repro.service import MAX_BODY_BYTES, SERVICE_SCHEMA, make_server


@pytest.fixture
def server(tmp_path):
    server = make_server(tmp_path / "store", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _raw_post(server, headers: list[str], body: bytes = b"") -> tuple[int, dict]:
    """POST /runs with hand-rolled headers; returns (status, envelope)."""
    host, port = server.server_address[:2]
    request = "\r\n".join(
        ["POST /runs HTTP/1.1", f"Host: {host}:{port}", *headers, "", ""]
    ).encode() + body
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(request)
        sock.settimeout(10)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            # The error paths close the connection, but don't rely on
            # it: stop once a complete JSON body has arrived.
            head, _, rest = b"".join(chunks).partition(b"\r\n\r\n")
            if rest.endswith(b"\n") and rest.count(b"{") == rest.count(b"}"):
                break
    response = b"".join(chunks)
    head, _, payload = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload)


class TestContentLengthHardening:
    def test_malformed_content_length_is_400(self, server):
        status, payload = _raw_post(
            server, ["Content-Length: banana", "Content-Type: application/json"]
        )
        assert status == 400
        assert payload["schema"] == SERVICE_SCHEMA
        assert "Content-Length" in payload["error"]
        assert "banana" in payload["error"]

    def test_negative_content_length_is_400(self, server):
        status, payload = _raw_post(
            server, ["Content-Length: -5", "Content-Type: application/json"]
        )
        assert status == 400
        assert payload["schema"] == SERVICE_SCHEMA
        assert "Content-Length" in payload["error"]

    def test_huge_content_length_is_413_before_reading(self, server):
        # 10**18 bytes obviously never arrive: the server must refuse
        # from the header alone instead of trying to allocate or read.
        status, payload = _raw_post(
            server,
            [f"Content-Length: {10**18}", "Content-Type: application/json"],
        )
        assert status == 413
        assert payload["schema"] == SERVICE_SCHEMA
        assert str(MAX_BODY_BYTES) in payload["error"]

    def test_exponent_notation_is_rejected_not_parsed(self, server):
        status, payload = _raw_post(
            server, ["Content-Length: 1e18", "Content-Type: application/json"]
        )
        assert status == 400
        assert "1e18" in payload["error"]

    def test_server_still_answers_after_an_attack(self, server):
        _raw_post(server, ["Content-Length: banana"])
        _raw_post(server, [f"Content-Length: {10**18}"])
        status, payload = _raw_post(
            server,
            ["Content-Length: 2", "Content-Type: application/json"],
            body=b"{}",
        )
        # A well-formed (if useless) body reaches the handler, which
        # rejects it for missing 'specs' — proof the thread survived.
        assert status == 400
        assert "specs" in payload["error"]

    def test_missing_content_length_reads_empty_body(self, server):
        status, payload = _raw_post(server, ["Content-Type: application/json"])
        assert status == 400
        assert "specs" in payload["error"]
