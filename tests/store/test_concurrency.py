"""Store robustness: racing writers, corrupt artifacts, GC vs readers.

Three hazards a durable cache must survive:

- two *processes* writing the same spec key concurrently — one winner,
  no torn files, the store stays readable;
- a truncated/garbled artifact — a clear :class:`StoreError` naming the
  file, never a bare ``JSONDecodeError``/npz decode error;
- garbage collection racing a reader — a pinned entry is never evicted.
"""

import json
import multiprocessing
import pathlib
import sys

import pytest

from repro.errors import StoreError
from repro.run import MissStreamCache, Runner, RunSpec
from repro.store import ExperimentStore, stream_digest_for_spec

SCALE = 0.05


def spec_of(app="galgel", mechanism="DP", **kwargs):
    kwargs.setdefault("scale", SCALE)
    return RunSpec.of(app, mechanism, **kwargs)


def _write_same_key(store_dir: str, barrier, failures) -> None:
    """Child-process entry: compute one spec and store it, in lockstep."""
    try:
        spec = RunSpec.of("galgel", "DP", scale=SCALE)
        stats = Runner(cache=MissStreamCache()).run_one(spec)
        store = ExperimentStore(store_dir)
        barrier.wait(timeout=60)  # maximize write overlap
        for _ in range(5):
            store.put_result(spec, stats)
    except BaseException as exc:  # pragma: no cover - failure reporting
        failures.put(repr(exc))


class TestConcurrentWriters:
    def test_two_processes_same_key_one_winner_no_torn_files(self, tmp_path):
        store_dir = str(tmp_path / "store")
        ExperimentStore(store_dir).close()  # create the schema up front
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        failures = context.Queue()
        workers = [
            context.Process(target=_write_same_key, args=(store_dir, barrier, failures))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert failures.empty()

        store = ExperimentStore(store_dir)
        spec = spec_of()
        # Exactly one intact copy, identical to a local computation.
        assert store.stats()["result_entries"] == 1
        loaded = store.get_result(spec.key())
        expected = Runner(cache=MissStreamCache()).run_one(spec)
        assert loaded == expected
        artifacts = list(pathlib.Path(store_dir, "results").glob("*"))
        assert [path.name for path in artifacts] == [f"{spec.key()}.json"]


class TestCorruptArtifacts:
    def _stored(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        stats = Runner(cache=MissStreamCache()).run_one(spec)
        store.put_result(spec, stats)
        return store, spec

    def test_truncated_result_raises_store_error(self, tmp_path):
        store, spec = self._stored(tmp_path)
        artifact = tmp_path / "store" / "results" / f"{spec.key()}.json"
        artifact.write_bytes(artifact.read_bytes()[:20])  # torn write
        with pytest.raises(StoreError, match=str(artifact)):
            store.get_result(spec.key())

    def test_garbage_result_raises_store_error_not_json_error(self, tmp_path):
        store, spec = self._stored(tmp_path)
        artifact = tmp_path / "store" / "results" / f"{spec.key()}.json"
        artifact.write_text("not json at all")
        with pytest.raises(StoreError):
            store.get_result(spec.key())
        # And never the raw decoder error:
        try:
            store.get_result(spec.key())
        except StoreError as exc:
            assert not isinstance(exc, json.JSONDecodeError)

    def test_result_with_wrong_row_shape_raises_store_error(self, tmp_path):
        store, spec = self._stored(tmp_path)
        artifact = tmp_path / "store" / "results" / f"{spec.key()}.json"
        payload = json.loads(artifact.read_text())
        payload["run"] = {"workload": "galgel"}  # missing every counter
        artifact.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="corrupt result artifact"):
            store.get_result(spec.key())

    def test_truncated_stream_raises_store_error(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        runner = Runner(cache=MissStreamCache(), store=store)
        runner.miss_stream_for(spec)  # builds + persists the stream
        digest = stream_digest_for_spec(spec)
        (artifact,) = (tmp_path / "store" / "streams").glob("*.npz")
        artifact.write_bytes(artifact.read_bytes()[:30])
        with pytest.raises(StoreError, match="corrupt miss-stream artifact"):
            store.get_stream(digest)

    def test_deleted_artifact_is_a_miss_not_an_error(self, tmp_path):
        store, spec = self._stored(tmp_path)
        (tmp_path / "store" / "results" / f"{spec.key()}.json").unlink()
        assert store.get_result(spec.key()) is None


class TestGCNeverEvictsMidRead:
    def test_pinned_entry_survives_gc_to_zero(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        pinned_spec = spec_of(mechanism="DP")
        victim_spec = spec_of(mechanism="RP")
        runner = Runner(cache=MissStreamCache())
        store.put_result(pinned_spec, runner.run_one(pinned_spec))
        store.put_result(victim_spec, runner.run_one(victim_spec))

        with store.pinned(pinned_spec.key()):
            report = store.gc(max_bytes=0)
            # Mid-read: the pinned artifact is untouched and readable.
            assert store.get_result(pinned_spec.key()) is not None
        assert report["evicted"] == 1
        assert [e["key"] for e in store.entries()] == [pinned_spec.key()]

        # Once the read finishes the entry is fair game again.
        report = store.gc(max_bytes=0)
        assert report["evicted"] == 1
        assert store.entries() == []

    def test_pins_are_reentrant(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        store.put_result(spec, Runner(cache=MissStreamCache()).run_one(spec))
        with store.pinned(spec.key()):
            with store.pinned(spec.key()):
                store.gc(max_bytes=0)
            store.gc(max_bytes=0)  # still pinned by the outer reader
            assert store.get_result(spec.key()) is not None
        store.gc(max_bytes=0)
        assert store.entries() == []


if sys.platform.startswith("win"):  # pragma: no cover
    pytest.skip("POSIX-only concurrency assumptions", allow_module_level=True)
