"""Admission-control tests: buckets, tenants, auth, scoping, shedding.

The unit layer drives :class:`TokenBucket` / :class:`CostTracker` /
:class:`AdmissionController` with an injected clock; the service layer
exercises the full gauntlet (401/403, tenant isolation, rate-limit
429s, queue-full shedding) through :class:`ExperimentService.handle`
and — where headers matter — over real HTTP.
"""

import json
import threading
import time

import pytest

from repro.errors import ReproError, StoreError
from repro.service import (
    AdmissionController,
    ExperimentService,
    ServiceClient,
    ServiceError,
    TenantConfig,
    load_tenant_config,
    make_server,
)
from repro.service.admission import CostTracker, TokenBucket
from repro.store import ExperimentStore

SCALE = 0.05

SPEC_PAYLOAD = {
    "workload": "galgel",
    "mechanism": "DP",
    "scale": SCALE,
    "params": {"rows": 256, "slots": 2},
}

OTHER_SPEC = {
    "workload": "swim",
    "mechanism": "DP",
    "scale": SCALE,
    "params": {"rows": 256, "slots": 2},
}


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.available == pytest.approx(3.0)

    def test_wait_names_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        # Asking for more than the whole burst cannot succeed, but the
        # wait still prices the deficit.
        wait = bucket.try_acquire(10.0)
        assert wait == pytest.approx((10.0 - 4.0) / 2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ReproError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ReproError):
            TokenBucket(rate=1.0, burst=0.0)


class TestCostTracker:
    def test_charges_and_denials_are_counted(self):
        clock = FakeClock()
        tracker = CostTracker(rate=1.0, burst=10.0, clock=clock)
        assert tracker.try_charge(8.0) == 0.0
        assert tracker.try_charge(8.0) > 0.0
        assert tracker.charged == pytest.approx(8.0)
        assert tracker.denied == 1
        clock.advance(6.0)
        assert tracker.try_charge(8.0) == 0.0
        assert tracker.charged == pytest.approx(16.0)


class TestTenantConfig:
    def test_defaults_and_validation(self):
        tenant = TenantConfig(name="alpha", token="alpha-token")
        assert tenant.worker is True
        assert tenant.rate > 0 and tenant.cost_burst > 0
        with pytest.raises(ReproError):
            TenantConfig(name="", token="t")
        with pytest.raises(ReproError):
            TenantConfig(name="a", token="")
        with pytest.raises(ReproError):
            TenantConfig(name="a", token="t", rate=-1.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ReproError, match="unknown fields"):
            TenantConfig.from_dict({"name": "a", "token": "t", "quota": 5})

    def test_load_tenant_config_shapes(self, tmp_path):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps([{"name": "a", "token": "ta"}]))
        assert [t.name for t in load_tenant_config(bare)] == ["a"]

        enveloped = tmp_path / "env.json"
        enveloped.write_text(
            json.dumps(
                {
                    "tenants": [
                        {"name": "a", "token": "ta", "worker": False},
                        {"name": "b", "token": "tb", "rate": 5.0},
                    ]
                }
            )
        )
        tenants = load_tenant_config(enveloped)
        assert [t.name for t in tenants] == ["a", "b"]
        assert tenants[0].worker is False

    def test_load_tenant_config_rejects_duplicates_and_junk(self, tmp_path):
        dupes = tmp_path / "dupes.json"
        dupes.write_text(
            json.dumps(
                [{"name": "a", "token": "t1"}, {"name": "a", "token": "t2"}]
            )
        )
        with pytest.raises(ReproError, match="duplicate tenant names"):
            load_tenant_config(dupes)
        shared = tmp_path / "shared.json"
        shared.write_text(
            json.dumps(
                [{"name": "a", "token": "t"}, {"name": "b", "token": "t"}]
            )
        )
        with pytest.raises(ReproError, match="duplicate tenant tokens"):
            load_tenant_config(shared)
        with pytest.raises(ReproError, match="cannot read"):
            load_tenant_config(tmp_path / "missing.json")
        junk = tmp_path / "junk.json"
        junk.write_text("{not json")
        with pytest.raises(ReproError, match="not JSON"):
            load_tenant_config(junk)


class TestAdmissionController:
    def test_open_mode_is_anonymous_and_unlimited(self):
        controller = AdmissionController()
        assert controller.open_mode
        tenant, error = controller.authenticate(None)
        assert tenant is None and error is None
        # Anonymous requests are never rate limited...
        assert controller.check_rate(None) == 0.0
        # ...but the in-flight pool still bounds them.
        assert controller.try_enter(None) is None
        controller.leave()

    def test_token_mode_auth_paths(self):
        alpha = TenantConfig(name="alpha", token="alpha-token")
        controller = AdmissionController(tenants=[alpha])
        assert not controller.open_mode
        tenant, error = controller.authenticate("Bearer alpha-token")
        assert tenant is alpha and error is None
        for header in (None, "alpha-token", "Basic alpha-token", "Bearer "):
            tenant, error = controller.authenticate(header)
            assert tenant is None and error is not None
        _, error = controller.authenticate("Bearer wrong")
        assert error == "unknown API token"
        assert "wrong" not in error

    def test_rate_limit_prices_the_wait(self):
        clock = FakeClock()
        alpha = TenantConfig(name="alpha", token="t", rate=1.0, burst=2.0)
        controller = AdmissionController(tenants=[alpha], clock=clock)
        assert controller.check_rate(alpha) == 0.0
        assert controller.check_rate(alpha) == 0.0
        wait = controller.check_rate(alpha)
        assert wait == pytest.approx(1.0)
        clock.advance(1.0)
        assert controller.check_rate(alpha) == 0.0

    def test_inflight_pool_sheds_past_queue(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=0, queue_wait_seconds=0.01
        )
        assert controller.try_enter(None) is None
        shed = controller.try_enter(None)
        assert shed == controller.shed_retry_after
        assert controller.shed_total == 1
        controller.leave()
        assert controller.try_enter(None) is None
        controller.leave()

    def test_queued_request_gets_the_freed_slot(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=4, queue_wait_seconds=5.0
        )
        assert controller.try_enter(None) is None
        outcome: list = []
        waiter = threading.Thread(
            target=lambda: outcome.append(controller.try_enter(None))
        )
        waiter.start()
        # Give the waiter time to join the queue, then free the slot.
        deadline = threading.Event()
        deadline.wait(0.05)
        controller.leave()
        waiter.join(timeout=5.0)
        assert outcome == [None]
        controller.leave()

    def test_try_enter_deadline_uses_injected_clock(self):
        # The queue-wait deadline must come from the injected clock —
        # the same one the token buckets use — so tests control slot
        # shedding deterministically instead of sleeping wall time.
        class SteppingClock:
            def __init__(self) -> None:
                self.now = 0.0

            def __call__(self) -> float:
                now = self.now
                self.now += 60.0
                return now

        controller = AdmissionController(
            max_inflight=1,
            max_queue=4,
            queue_wait_seconds=5.0,
            clock=SteppingClock(),
        )
        assert controller.try_enter(None) is None
        began = time.monotonic()
        shed = controller.try_enter(None)
        assert shed == controller.shed_retry_after
        # The 5 fake queue-wait seconds lapsed on the fake clock — no
        # real 5s sleep happened.
        assert time.monotonic() - began < 2.0
        controller.leave()

    def test_census_shape(self):
        controller = AdmissionController(
            tenants=[TenantConfig(name="a", token="t")], max_inflight=7
        )
        census = controller.census()
        assert census["mode"] == "tenants"
        assert census["tenants"] == 1
        assert census["max_inflight"] == 7
        assert census["inflight"] == 0
        assert census["shed_total"] == 0


class TestStoreGrants:
    def test_grant_is_an_idempotent_acl(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.grant("alpha", "result", ["k1", "k2"])
        store.grant("alpha", "result", ["k2", "k3"])
        assert store.granted_keys("alpha", "result") == {"k1", "k2", "k3"}
        assert store.is_granted("alpha", "result", "k1")
        assert not store.is_granted("beta", "result", "k1")
        assert store.granted_keys("beta", "result") == set()

    def test_grant_validates_inputs(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.grant("", "result", ["k"])
        with pytest.raises(StoreError):
            store.grant("alpha", "frobs", ["k"])

    def test_lazy_migration_recreates_the_table(self, tmp_path):
        # A pre-admission store has no tenant_keys table; reopening it
        # must migrate in place without touching existing artifacts.
        root = tmp_path / "store"
        store = ExperimentStore(root)
        store.grant("alpha", "result", ["k"])
        store._db.execute("DROP TABLE tenant_keys")
        store._db.commit()
        store.close()
        reopened = ExperimentStore(root)
        assert reopened.granted_keys("alpha", "result") == set()
        reopened.grant("alpha", "result", ["k2"])
        assert reopened.is_granted("alpha", "result", "k2")


ALPHA = {"name": "alpha", "token": "alpha-token"}
BETA = {"name": "beta", "token": "beta-token"}


def _service(tmp_path, tenants=(), **admission_kwargs):
    store = ExperimentStore(tmp_path / "store")
    admission = AdmissionController(
        tenants=[TenantConfig(**raw) for raw in tenants], **admission_kwargs
    )
    return ExperimentService(store, admission=admission)


def _auth(token):
    return f"Bearer {token}"


class TestServiceAuth:
    def test_missing_and_unknown_tokens_are_401(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA])
        status, payload = service.handle("GET", "/stats")
        assert status == 401
        assert "Authorization" in payload["error"]
        status, payload = service.handle(
            "GET", "/stats", authorization="Bearer nope"
        )
        assert status == 401
        status, _ = service.handle(
            "GET", "/stats", authorization=_auth("alpha-token")
        )
        assert status == 200

    def test_ops_routes_bypass_auth(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA])
        assert service.handle("GET", "/healthz")[0] in (200, 503)
        assert service.handle("GET", "/alerts")[0] == 200

    def test_non_worker_tenant_is_403_on_fleet_routes(self, tmp_path):
        service = _service(
            tmp_path, tenants=[{**ALPHA, "worker": False}, BETA]
        )
        for route in ("/claim", "/complete", "/heartbeat"):
            status, payload = service.handle(
                "POST", route, body={}, authorization=_auth("alpha-token")
            )
            assert status == 403, route
            assert "worker" in payload["error"]
        # A worker-capable tenant passes admission (then fails body
        # validation, which is the handler's 400 — not auth's 403).
        status, _ = service.handle(
            "POST", "/claim", body={}, authorization=_auth("beta-token")
        )
        assert status == 400

    def test_open_mode_needs_no_token(self, tmp_path):
        service = _service(tmp_path)
        assert service.handle("GET", "/stats")[0] == 200


class TestTenantIsolation:
    def test_results_and_runs_are_tenant_scoped(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        status, submitted = service.handle(
            "POST",
            "/runs",
            body={"specs": [SPEC_PAYLOAD]},
            authorization=_auth("alpha-token"),
        )
        assert status == 200
        (key,) = submitted["keys"]

        # Alpha sees its run; beta sees neither the row nor the key.
        status, mine = service.handle(
            "GET", "/results", authorization=_auth("alpha-token")
        )
        assert status == 200 and mine["count"] == 1
        status, theirs = service.handle(
            "GET", "/results", authorization=_auth("beta-token")
        )
        assert status == 200 and theirs["count"] == 0
        assert service.handle(
            "GET", f"/runs/{key}", authorization=_auth("alpha-token")
        )[0] == 200
        status, payload = service.handle(
            "GET", f"/runs/{key}", authorization=_auth("beta-token")
        )
        assert status == 404
        # The denial is indistinguishable from a missing run.
        assert "no stored run" in payload["error"]

    def test_shared_artifacts_one_row_per_spec(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        service.handle(
            "POST",
            "/runs",
            body={"specs": [SPEC_PAYLOAD]},
            authorization=_auth("alpha-token"),
        )
        status, again = service.handle(
            "POST",
            "/runs",
            body={"specs": [SPEC_PAYLOAD]},
            authorization=_auth("beta-token"),
        )
        # Beta's submission is served from the store (shared artifact)
        # and beta now holds its own grant to the same row.
        assert status == 200 and again["store_hits"] == 1
        status, theirs = service.handle(
            "GET", "/results", authorization=_auth("beta-token")
        )
        assert theirs["count"] == 1

    def test_streams_are_tenant_scoped(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        status, _ = service.handle(
            "POST",
            "/streams",
            body={"spec": SPEC_PAYLOAD, "session_id": "s1"},
            authorization=_auth("alpha-token"),
        )
        assert status == 200
        for method, path, body in (
            ("GET", "/streams/s1/stats", None),
            ("POST", "/streams/s1/advance", {}),
        ):
            status, payload = service.handle(
                method, path, body=body, authorization=_auth("beta-token")
            )
            assert status == 404, path
            assert "no streaming session" in payload["error"]
        assert service.handle(
            "GET", "/streams/s1/stats", authorization=_auth("alpha-token")
        )[0] == 200

    def test_stream_tenancy_survives_eviction(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        service.handle(
            "POST",
            "/streams",
            body={"spec": SPEC_PAYLOAD, "session_id": "s1"},
            authorization=_auth("alpha-token"),
        )
        service._sessions.clear()  # simulate idle eviction / restart
        status, _ = service.handle(
            "GET", "/streams/s1/stats", authorization=_auth("beta-token")
        )
        assert status == 404
        status, _ = service.handle(
            "GET", "/streams/s1/stats", authorization=_auth("alpha-token")
        )
        assert status == 200

    def test_sweeps_are_owner_scoped(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        status, submitted = service.handle(
            "POST",
            "/jobs",
            body={"specs": [SPEC_PAYLOAD], "sweep_id": "sweep-a"},
            authorization=_auth("alpha-token"),
        )
        assert status == 200
        job_id = submitted["jobs"][0]["id"]

        assert service.handle(
            "GET", f"/jobs/{job_id}", authorization=_auth("alpha-token")
        )[0] == 200
        assert service.handle(
            "GET", f"/jobs/{job_id}", authorization=_auth("beta-token")
        )[0] == 404
        status, _ = service.handle(
            "GET",
            "/progress",
            query={"sweep_id": "sweep-a"},
            authorization=_auth("beta-token"),
        )
        assert status == 404
        status, _ = service.handle(
            "POST",
            "/cancel",
            body={"sweep_id": "sweep-a"},
            authorization=_auth("beta-token"),
        )
        assert status == 404
        status, cancelled = service.handle(
            "POST",
            "/cancel",
            body={"sweep_id": "sweep-a"},
            authorization=_auth("alpha-token"),
        )
        assert status == 200 and cancelled["cancelled"] == 1

    def test_sweep_id_cannot_be_taken_over(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        status, _ = service.handle(
            "POST",
            "/jobs",
            body={"specs": [SPEC_PAYLOAD], "sweep_id": "sweep-a"},
            authorization=_auth("alpha-token"),
        )
        assert status == 200
        # An empty spec list must not be a free (zero-cost) resume.
        status, _ = service.handle(
            "POST",
            "/jobs",
            body={"specs": [], "sweep_id": "sweep-a"},
            authorization=_auth("beta-token"),
        )
        assert status == 400
        # Resubmitting someone else's sweep id answers exactly like a
        # missing sweep and leaves ownership untouched.
        status, payload = service.handle(
            "POST",
            "/jobs",
            body={"specs": [SPEC_PAYLOAD], "sweep_id": "sweep-a"},
            authorization=_auth("beta-token"),
        )
        assert status == 404 and "no sweep" in payload["error"]
        assert service.handle(
            "GET",
            "/progress",
            query={"sweep_id": "sweep-a"},
            authorization=_auth("beta-token"),
        )[0] == 404
        assert service.handle(
            "GET",
            "/progress",
            query={"sweep_id": "sweep-a"},
            authorization=_auth("alpha-token"),
        )[0] == 200
        # The real owner can still resume their own sweep.
        status, _ = service.handle(
            "POST",
            "/jobs",
            body={"specs": [SPEC_PAYLOAD], "sweep_id": "sweep-a"},
            authorization=_auth("alpha-token"),
        )
        assert status == 200

    def test_sweep_ownership_survives_restart(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        status, _ = service.handle(
            "POST",
            "/jobs",
            body={"specs": [SPEC_PAYLOAD], "sweep_id": "sweep-a"},
            authorization=_auth("alpha-token"),
        )
        assert status == 200
        service.queue.close()
        service.store.close()
        service.close()
        # Ownership rides in the queue file, so a restarted service
        # keeps beta out and alpha in.
        reopened = _service(tmp_path, tenants=[ALPHA, BETA])
        status, _ = reopened.handle(
            "POST",
            "/jobs",
            body={"specs": [SPEC_PAYLOAD], "sweep_id": "sweep-a"},
            authorization=_auth("beta-token"),
        )
        assert status == 404
        assert reopened.handle(
            "GET",
            "/progress",
            query={"sweep_id": "sweep-a"},
            authorization=_auth("beta-token"),
        )[0] == 404
        assert reopened.handle(
            "GET",
            "/progress",
            query={"sweep_id": "sweep-a"},
            authorization=_auth("alpha-token"),
        )[0] == 200

    def test_foreign_session_ids_do_not_collide_or_leak(self, tmp_path):
        service = _service(tmp_path, tenants=[ALPHA, BETA])
        status, _ = service.handle(
            "POST",
            "/streams",
            body={"spec": SPEC_PAYLOAD, "session_id": "s1"},
            authorization=_auth("alpha-token"),
        )
        assert status == 200
        # Beta reusing the same id opens beta's *own* fresh session —
        # indistinguishable from any unused id, so POST /streams can't
        # probe for foreign sessions (previously a revealing 409).
        status, theirs = service.handle(
            "POST",
            "/streams",
            body={"spec": OTHER_SPEC, "session_id": "s1"},
            authorization=_auth("beta-token"),
        )
        assert status == 200 and theirs["offset"] == 0
        # The two sessions advance independently...
        status, step = service.handle(
            "POST",
            "/streams/s1/advance",
            body={"count": 1},
            authorization=_auth("alpha-token"),
        )
        assert status == 200 and step["offset"] == 1
        status, stats = service.handle(
            "GET", "/streams/s1/stats", authorization=_auth("beta-token")
        )
        assert status == 200 and stats["offset"] == 0
        # ...each tenant still gets a 409 for their own duplicate...
        for token in ("alpha-token", "beta-token"):
            status, _ = service.handle(
                "POST",
                "/streams",
                body={"spec": SPEC_PAYLOAD, "session_id": "s1"},
                authorization=_auth(token),
            )
            assert status == 409, token
        # ...and a percent-encoded "/" cannot forge a namespaced key.
        status, _ = service.handle(
            "GET",
            "/streams/alpha%2Fs1/stats",
            authorization=_auth("beta-token"),
        )
        assert status == 400


class TestRateAndCostLimits:
    def test_rate_limited_request_gets_429_with_retry_after(self, tmp_path):
        service = _service(
            tmp_path, tenants=[{**ALPHA, "rate": 1.0, "burst": 2.0}]
        )
        statuses = [
            service.handle(
                "GET", "/stats", authorization=_auth("alpha-token")
            )[0]
            for _ in range(3)
        ]
        assert statuses == [200, 200, 429]
        status, payload = service.handle(
            "GET", "/stats", authorization=_auth("alpha-token")
        )
        assert status == 429
        assert payload["retry_after"] > 0
        assert "rate limit" in payload["error"]

    def test_cost_budget_bounds_sweep_size(self, tmp_path):
        service = _service(
            tmp_path,
            tenants=[{**ALPHA, "cost_rate": 1.0, "cost_burst": 1.0}],
        )
        status, payload = service.handle(
            "POST",
            "/runs",
            body={"specs": [SPEC_PAYLOAD, OTHER_SPEC]},
            authorization=_auth("alpha-token"),
        )
        assert status == 429
        assert "cost budget" in payload["error"]
        assert payload["retry_after"] > 0
        status, payload = service.handle(
            "POST",
            "/jobs",
            body={"specs": [SPEC_PAYLOAD, OTHER_SPEC]},
            authorization=_auth("alpha-token"),
        )
        assert status == 429
        assert "cost budget" in payload["error"]

    def test_admission_metrics_label_the_outcomes(self, tmp_path):
        from repro.service.admission import _OBS_ADMISSION

        service = _service(
            tmp_path, tenants=[{**ALPHA, "rate": 1.0, "burst": 1.0}]
        )
        before_admitted = _OBS_ADMISSION.value(
            tenant="alpha", outcome="admitted"
        )
        before_limited = _OBS_ADMISSION.value(
            tenant="alpha", outcome="rate_limited"
        )
        service.handle("GET", "/stats", authorization=_auth("alpha-token"))
        service.handle("GET", "/stats", authorization=_auth("alpha-token"))
        assert (
            _OBS_ADMISSION.value(tenant="alpha", outcome="admitted")
            == before_admitted + 1
        )
        assert (
            _OBS_ADMISSION.value(tenant="alpha", outcome="rate_limited")
            == before_limited + 1
        )


class TestShedding:
    def test_full_pool_sheds_with_429(self, tmp_path):
        service = _service(tmp_path, max_inflight=1, max_queue=0,
                           queue_wait_seconds=0.01)
        # Occupy the only slot out-of-band, then knock.
        assert service.admission.try_enter() is None
        try:
            status, payload = service.handle("GET", "/stats")
            assert status == 429
            assert payload["retry_after"] > 0
            assert "shed" in payload["error"]
        finally:
            service.admission.leave()
        assert service.handle("GET", "/stats")[0] == 200

    def test_flood_sheds_cleanly_no_5xx(self, tmp_path):
        service = _service(tmp_path, max_inflight=2, max_queue=1,
                           queue_wait_seconds=0.01)
        statuses: list[int] = []
        lock = threading.Lock()

        def hammer():
            for _ in range(20):
                status, payload = service.handle("GET", "/stats")
                with lock:
                    statuses.append(status)
                if status == 429:
                    assert payload["retry_after"] > 0

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert statuses and all(s in (200, 429) for s in statuses)
        census = service.admission.census()
        assert census["inflight"] == 0 and census["queued"] == 0

    def test_ops_routes_answer_while_shedding(self, tmp_path):
        service = _service(tmp_path, max_inflight=1, max_queue=0,
                           queue_wait_seconds=0.01)
        assert service.admission.try_enter() is None
        try:
            assert service.handle("GET", "/stats")[0] == 429
            # Health and alerts bypass admission entirely.
            assert service.handle("GET", "/healthz")[0] in (200, 503)
            assert service.handle("GET", "/alerts")[0] == 200
        finally:
            service.admission.leave()


class TestSheddingOverHTTP:
    @pytest.fixture
    def shedding_server(self, tmp_path):
        admission = AdmissionController(
            max_inflight=1, max_queue=0, queue_wait_seconds=0.01
        )
        server = make_server(tmp_path / "store", port=0, admission=admission)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_retry_after_header_rides_the_429(self, shedding_server):
        import urllib.error
        import urllib.request

        service = shedding_server.service
        assert service.admission.try_enter() is None
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    shedding_server.url + "/stats", timeout=10
                )
            assert excinfo.value.code == 429
            header = excinfo.value.headers.get("Retry-After")
            assert header is not None and int(header) >= 1
            payload = json.loads(excinfo.value.read())
            assert payload["retry_after"] > 0
        finally:
            service.admission.leave()

    def test_wait_healthy_works_while_shedding(self, shedding_server):
        service = shedding_server.service
        assert service.admission.try_enter() is None
        try:
            # /healthz bypasses admission, so readiness probes keep
            # answering while every data route sheds.
            report = ServiceClient(shedding_server.url).wait_healthy(
                timeout=10.0
            )
            assert report["status"] == "ok"
        finally:
            service.admission.leave()

    def test_client_honors_retry_after_on_429(self, shedding_server):
        service = shedding_server.service
        client = ServiceClient(shedding_server.url, max_retries=2)
        assert service.admission.try_enter() is None
        releaser = threading.Timer(0.3, service.admission.leave)
        releaser.start()
        try:
            # First attempt sheds; the client sleeps the server's hint
            # and the retry lands after the slot frees up.
            payload = client.stats()
            assert payload["schema"].startswith("repro.service/")
            assert client.retries >= 1
        finally:
            releaser.join()


class TestClientRetryBudget:
    def test_hinted_sleeps_draw_on_one_timeout_budget(self, monkeypatch):
        import io
        import urllib.error
        import urllib.request
        from email.message import Message

        def always_shed(request, timeout=None):
            headers = Message()
            headers["Retry-After"] = "30"
            raise urllib.error.HTTPError(
                request.full_url,
                429,
                "Too Many Requests",
                headers,
                io.BytesIO(b'{"error": "shed", "retry_after": 30.0}'),
            )

        monkeypatch.setattr(urllib.request, "urlopen", always_shed)
        client = ServiceClient("http://127.0.0.1:1", max_retries=10)
        began = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.request("/stats", timeout=0.2)
        # The 30s hint x 10 retries must not stack: every hinted sleep
        # draws on the one 0.2s request budget, so the call gives up in
        # well under a second instead of minutes.
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 30.0
        assert time.monotonic() - began < 5.0
        assert client.backoff_seconds <= 0.25
        assert client.retries >= 1
