"""Store-backed execution: the resumable-sweep acceptance criteria.

The headline contract (ISSUE 3): a sweep run twice against the same
store performs **zero replays** on the second pass — verified through
the store's hit counters and the miss-stream cache's filter counters —
and yields a ResultSet **bit-identical** to the cold run, under both
serial and ``workers=N`` execution and under both replay engines.
"""

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.errors import ConfigurationError
from repro.run import MissStreamCache, Runner, RunSpec
from repro.store import ExperimentStore

SCALE = 0.05


def spec_of(app="galgel", mechanism="DP", **kwargs):
    kwargs.setdefault("scale", SCALE)
    return RunSpec.of(app, mechanism, **kwargs)


def sweep_specs(engine="auto"):
    return [
        spec_of(app, mechanism, engine=engine)
        for app in ("galgel", "swim")
        for mechanism in ("DP", "RP", "ASP", "MP")
    ]


class TestResumableSweeps:
    @pytest.mark.parametrize("engine", ["auto", "reference", "fast"])
    def test_second_pass_zero_replays_bit_identical(self, tmp_path, engine):
        store = ExperimentStore(tmp_path / "store")
        runner = Runner(cache=MissStreamCache(), store=store)
        specs = sweep_specs(engine)

        cold = runner.run(specs)
        after_cold = store.stats()
        assert after_cold["result_misses"] == len(specs)
        assert after_cold["result_hits"] == 0

        warm_cache = MissStreamCache()
        warm = Runner(cache=warm_cache, store=store).run(specs)
        after_warm = store.stats()
        assert after_warm["result_hits"] == len(specs)  # 100% store hits
        assert after_warm["result_misses"] == len(specs)  # unchanged
        assert warm_cache.misses == 0  # zero TLB filters => zero replays
        assert warm.to_json() == cold.to_json()  # bit-identical

    def test_second_pass_parallel_bit_identical(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        specs = sweep_specs()
        cold = Runner(workers=2, cache=MissStreamCache(), store=store).run(specs)
        before = store.stats()
        warm = Runner(workers=2, cache=MissStreamCache(), store=store).run(specs)
        after = store.stats()
        assert after["result_hits"] - before["result_hits"] == len(specs)
        assert after["result_misses"] == before["result_misses"]
        assert warm.to_json() == cold.to_json()

    def test_cold_parallel_equals_cold_serial_and_stores_once(self, tmp_path):
        specs = sweep_specs()
        serial_store = ExperimentStore(tmp_path / "serial")
        serial = Runner(cache=MissStreamCache(), store=serial_store).run(specs)
        parallel_store = ExperimentStore(tmp_path / "parallel")
        parallel = Runner(
            workers=4, cache=MissStreamCache(), store=parallel_store
        ).run(specs)
        assert parallel.to_json() == serial.to_json()
        assert parallel_store.stats()["result_entries"] == len(specs)

    def test_engines_share_store_entries(self, tmp_path):
        """Engine is execution metadata: a run stored by the fast engine
        is a hit for the same spec on the reference engine (and the row
        is identical, by the differential-tested contract)."""
        store = ExperimentStore(tmp_path / "store")
        fast = Runner(cache=MissStreamCache(), store=store).run(sweep_specs("fast"))
        before = store.stats()
        reference = Runner(cache=MissStreamCache(), store=store).run(
            sweep_specs("reference")
        )
        after = store.stats()
        assert after["result_misses"] == before["result_misses"]
        assert reference.to_json() == fast.to_json()

    def test_duplicates_one_compute_one_copy(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        spec = spec_of()
        results = Runner(cache=MissStreamCache(), store=store).run(
            [spec, spec, spec]
        )
        assert len(results) == 3
        assert results[0] == results[1] == results[2]
        stats = store.stats()
        assert stats["result_entries"] == 1
        assert stats["result_misses"] == 1  # one lookup per unique key

    def test_fresh_process_reuses_streams_for_new_mechanisms(self, tmp_path):
        """A new process extending a sweep loads stored *streams* instead
        of re-filtering, even when the specs themselves are new."""
        store_dir = tmp_path / "store"
        Runner(cache=MissStreamCache(), store=ExperimentStore(store_dir)).run(
            [spec_of(mechanism="DP")]
        )
        fresh_store = ExperimentStore(store_dir)
        before = fresh_store.stats()
        Runner(cache=MissStreamCache(), store=fresh_store).run(
            [spec_of(mechanism="RP")]  # new spec, same stream
        )
        after = fresh_store.stats()
        assert after["stream_hits"] - before["stream_hits"] == 1

    def test_store_accepts_a_path(self, tmp_path):
        runner = Runner(cache=MissStreamCache(), store=tmp_path / "store")
        assert isinstance(runner.store, ExperimentStore)
        runner.run([spec_of()])
        assert runner.store.stats()["result_entries"] == 1


class TestExperimentContextResumption:
    def test_figure_resumes_from_store(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        cold_context = ExperimentContext(scale=SCALE, store=store)
        cold = cold_context.run_figure(["galgel"])
        before = store.stats()
        assert before["result_misses"] > 0

        warm_cache = MissStreamCache()
        warm_context = ExperimentContext(
            scale=SCALE, runner=Runner(cache=warm_cache, store=store)
        )
        warm = warm_context.run_figure(["galgel"])
        after = store.stats()
        assert warm == cold
        assert after["result_misses"] == before["result_misses"]
        assert warm_cache.misses == 0  # no filtering on resumption

    def test_partial_sweep_only_missing_specs_replay(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        context = ExperimentContext(scale=SCALE, store=store)
        context.run_figure(["galgel"])
        before = store.stats()
        context.run_figure(["galgel", "swim"])  # extends the sweep
        after = store.stats()
        new_specs = after["result_entries"] - before["result_entries"]
        assert new_specs > 0  # swim rows computed...
        assert after["result_misses"] - before["result_misses"] == new_specs
        assert after["result_hits"] - before["result_hits"] == before["result_entries"]

    def test_runner_and_store_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="either runner= or store="):
            ExperimentContext(
                runner=Runner(cache=MissStreamCache()),
                store=ExperimentStore(tmp_path / "store"),
            )
