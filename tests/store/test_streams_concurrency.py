"""Regression: per-session locks ended the ``/streams`` serialization.

Before the sharded session table, one service-wide RLock serialized
every streaming request — an advance blocked in checkpointing stalled
*every other* session, and idle-eviction raced restore-on-touch
through the same lock. These tests pin the new contract: one stuck
session blocks only itself, eviction + restore proceed concurrently,
and the final statistics stay byte-identical to a one-shot run.
"""

import json
import threading
import time

import pytest

from repro.service.server import ExperimentService
from repro.store import ExperimentStore

SCALE = 0.02


def _spec_dict(**overrides):
    spec = {"workload": "galgel", "mechanism": "DP", "scale": SCALE,
            "params": {"rows": 64}}
    spec.update(overrides)
    return spec


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "store")


@pytest.fixture
def service(store):
    return ExperimentService(store)


def _one_shot_row(service, spec_dict):
    status, payload = service.handle(
        "POST", "/runs", body={"specs": [spec_dict]}
    )
    assert status == 200
    return payload["runs"][0]


def _open(service, session_id, spec_dict):
    status, opened = service.handle(
        "POST", "/streams", body={"spec": spec_dict, "session_id": session_id}
    )
    assert status == 200
    return opened


def _drain(service, session_id):
    status, step = service.handle(
        "POST", f"/streams/{session_id}/advance", body={}
    )
    assert status == 200 and step["finished"]
    return step


class TestNoCrossSessionBlocking:
    def test_stuck_session_blocks_only_itself(self, service):
        """Two sessions advance while a third holds its lock in a slow
        checkpoint, and a fourth is evicted + restored — all without
        waiting on the stuck one."""
        slow_spec = _spec_dict()
        fast_spec = _spec_dict(workload="swim")
        third_spec = _spec_dict(workload="ammp")
        slow_expected = _one_shot_row(service, slow_spec)
        fast_expected = _one_shot_row(service, fast_spec)
        third_expected = _one_shot_row(service, third_spec)

        _open(service, "slow", slow_spec)
        _open(service, "fast", fast_spec)
        _open(service, "third", third_spec)

        # Make 'slow''s next checkpoint block until released, while it
        # holds its per-session entry lock.
        release = threading.Event()
        entered = threading.Event()
        original = service._checkpoint_session

        def gated(session_id, spec, session, tenant=None):
            if session_id == "slow":
                entered.set()
                assert release.wait(timeout=30), "test deadlock"
            return original(session_id, spec, session, tenant)

        service._checkpoint_session = gated
        slow_result = {}

        def advance_slow():
            slow_result["step"] = _drain(service, "slow")

        stuck = threading.Thread(target=advance_slow)
        stuck.start()
        assert entered.wait(timeout=30)

        try:
            # While 'slow' is wedged mid-checkpoint: 'fast' advances to
            # completion...
            began = time.monotonic()
            fast_step = _drain(service, "fast")
            # ...and 'third' is evicted and restored on touch.
            entry = service._sessions.get_or_create("third")
            entry.touched = time.monotonic() - 10_000.0
            assert service._sessions.evict_idle(300.0) == 1
            status, restored_stats = service.handle(
                "GET", "/streams/third/stats"
            )
            elapsed = time.monotonic() - began
            assert status == 200
            assert restored_stats["offset"] == 0
            third_step = _drain(service, "third")
        finally:
            release.set()
            stuck.join(timeout=60)
        assert "step" in slow_result

        # The wedge held 'slow''s lock for the whole window; had the
        # old global lock still existed, the fast/third work above
        # would have waited the full 30s gate instead of finishing in
        # test time.
        assert elapsed < 20.0
        census = service._sessions.census()
        assert census["evicted"] == 1 and census["restored"] == 1

        # Interleaving and eviction changed nothing: every session's
        # final row is byte-identical to its one-shot run.
        for step, expected in (
            (slow_result["step"], slow_expected),
            (fast_step, fast_expected),
            (third_step, third_expected),
        ):
            assert json.dumps(step["stats"], sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )

    def test_parallel_advances_on_distinct_sessions(self, service):
        specs = {
            f"s{i}": _spec_dict(params={"rows": 64 + i})
            for i in range(4)
        }
        expected = {
            name: _one_shot_row(service, spec) for name, spec in specs.items()
        }
        for name, spec in specs.items():
            _open(service, name, spec)

        results: dict[str, dict] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def drain(name):
            try:
                step = _drain(service, name)
                with lock:
                    results[name] = step
            except BaseException as exc:  # pragma: no cover - diagnostics
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=drain, args=(name,)) for name in specs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert set(results) == set(specs)
        for name in specs:
            assert json.dumps(
                results[name]["stats"], sort_keys=True
            ) == json.dumps(expected[name], sort_keys=True)

    def test_concurrent_touch_of_an_evicted_session_restores_once(
        self, service
    ):
        spec = _spec_dict()
        _one_shot_row(service, spec)
        _open(service, "s1", spec)
        service.handle("POST", "/streams/s1/advance", body={"count": 100})
        service._sessions.clear()  # evict

        statuses: list[int] = []
        lock = threading.Lock()

        def touch():
            status, _ = service.handle("GET", "/streams/s1/stats")
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=touch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert statuses == [200] * 8
        # The racing touches resolved to ONE restore: the first holder
        # of the fresh entry lock restored, the rest found it live.
        assert service._sessions.census()["restored"] == 1
