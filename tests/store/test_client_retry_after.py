"""ServiceClient Retry-After handling against a scripted stub server.

The stub answers from a canned queue of (status, headers, payload)
responses, so the tests pin down exactly which errors the client
retries (429/503 **with** a hint), which it surfaces immediately (a
degraded-healthz 503 without one), and what it records while doing so.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import ServiceClient, ServiceError
from repro.service.client import _OBS_RETRIES


class _StubHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 - http.server API
        script = self.server.script
        status, headers, payload = (
            script.pop(0) if script else (200, {}, {"ok": True})
        )
        data = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format, *args):
        pass


@pytest.fixture
def stub():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
    server.script = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _client(stub, **kwargs):
    host, port = stub.server_address[:2]
    return ServiceClient(f"http://{host}:{port}", **kwargs)


class TestRetryAfterHonored:
    def test_429_with_hint_is_retried_until_success(self, stub):
        stub.script = [
            (429, {}, {"error": "shed", "retry_after": 0.01}),
            (429, {}, {"error": "shed", "retry_after": 0.01}),
            (200, {}, {"ok": True}),
        ]
        client = _client(stub, max_retries=3)
        before = _OBS_RETRIES.value(cause="http_429")
        assert client.request("/stats") == {"ok": True}
        assert client.retries == 2
        assert client.backoff_seconds == pytest.approx(0.02)
        assert _OBS_RETRIES.value(cause="http_429") == before + 2

    def test_503_with_hint_is_retried(self, stub):
        stub.script = [
            (503, {}, {"error": "busy", "retry_after": 0.01}),
            (200, {}, {"ok": True}),
        ]
        client = _client(stub)
        before = _OBS_RETRIES.value(cause="http_503")
        assert client.request("/stats") == {"ok": True}
        assert _OBS_RETRIES.value(cause="http_503") == before + 1

    def test_header_hint_is_used_when_payload_has_none(self, stub):
        stub.script = [
            (429, {"Retry-After": "0"}, {"error": "shed"}),
            (200, {}, {"ok": True}),
        ]
        client = _client(stub)
        assert client.request("/stats") == {"ok": True}
        assert client.retries == 1

    def test_hint_is_capped_by_the_request_timeout(self, stub):
        stub.script = [
            (429, {}, {"error": "shed", "retry_after": 3600.0}),
            (200, {}, {"ok": True}),
        ]
        client = _client(stub)
        assert client.request("/stats", timeout=0.05) == {"ok": True}
        # The sleep honored the request's remaining budget (timeout
        # minus the time the attempt itself took), not the server's
        # hour.
        assert 0 < client.backoff_seconds <= 0.05


class TestRetryAfterNotAbused:
    def test_503_without_hint_surfaces_immediately(self, stub):
        # A degraded /healthz is an *answer* (components unhealthy),
        # not an invitation to hammer: no hint, no retry.
        stub.script = [(503, {}, {"error": "degraded", "status": "degraded"})]
        client = _client(stub, max_retries=5)
        with pytest.raises(ServiceError) as excinfo:
            client.request("/healthz")
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after is None
        assert client.retries == 0

    def test_other_4xx_is_never_retried(self, stub):
        stub.script = [(404, {"Retry-After": "1"}, {"error": "missing"})]
        client = _client(stub, max_retries=5)
        with pytest.raises(ServiceError) as excinfo:
            client.request("/runs/nope")
        assert excinfo.value.status == 404
        assert client.retries == 0

    def test_exhausted_retries_raise_with_the_hint_attached(self, stub):
        stub.script = [
            (429, {}, {"error": "shed", "retry_after": 0.01}) for _ in range(5)
        ]
        client = _client(stub, max_retries=2)
        with pytest.raises(ServiceError) as excinfo:
            client.request("/stats")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == pytest.approx(0.01)
        assert client.retries == 2

    def test_unparseable_header_means_no_hint(self, stub):
        stub.script = [(429, {"Retry-After": "soon"}, {"error": "shed"})]
        client = _client(stub, max_retries=5)
        with pytest.raises(ServiceError) as excinfo:
            client.request("/stats")
        assert excinfo.value.retry_after is None
        assert client.retries == 0
