"""The store's ``ckpt`` artifact kind: filing, counters, GC, pins.

The store treats checkpoint blobs as opaque bytes — framing and
integrity live in :mod:`repro.ckpt` — but filing, LRU accounting,
eviction, and pin protection must work exactly like the other kinds.
"""

import pytest

from repro.store import ExperimentStore


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "store")


class TestFiling:
    def test_put_get_round_trip(self, store):
        assert store.put_ckpt("a" * 24, b"blob-bytes") == "a" * 24
        assert store.get_ckpt("a" * 24) == b"blob-bytes"
        assert store.has_ckpt("a" * 24)

    def test_missing_key(self, store):
        assert store.get_ckpt("b" * 24) is None
        assert not store.has_ckpt("b" * 24)

    def test_overwrite_replaces(self, store):
        store.put_ckpt("a" * 24, b"old")
        store.put_ckpt("a" * 24, b"newer")
        assert store.get_ckpt("a" * 24) == b"newer"

    def test_delete(self, store):
        store.put_ckpt("a" * 24, b"x")
        assert store.delete_ckpt("a" * 24) is True
        assert store.get_ckpt("a" * 24) is None
        assert store.delete_ckpt("a" * 24) is False

    def test_unsafe_keys_stay_inside_ckpt_dir(self, store):
        """Record keys contain ``:`` and could contain path tricks; all
        of them must file under ``ckpt/``."""
        for key in ("cont:spec/../../escape", "sess:s1", "a:b:c"):
            store.put_ckpt(key, b"x")
            assert store.get_ckpt(key) == b"x"
        inside = list((store.root / "ckpt").iterdir())
        assert len(inside) == 3
        assert not (store.root.parent / "escape.bin").exists()

    def test_ckpt_keys_prefix_filter(self, store):
        for key in ("cont:a", "cont:b", "sess:s1", "d" * 24):
            store.put_ckpt(key, b"x")
        assert store.ckpt_keys() == sorted(["cont:a", "cont:b", "sess:s1", "d" * 24])
        assert store.ckpt_keys("cont:") == ["cont:a", "cont:b"]
        assert store.ckpt_keys("sess:") == ["sess:s1"]


class TestAccounting:
    def test_hit_miss_counters(self, store):
        store.put_ckpt("a" * 24, b"x")
        store.get_ckpt("a" * 24)
        store.get_ckpt("missing-key-000000000000")
        stats = store.stats()
        assert stats["ckpt_hits"] == 1
        assert stats["ckpt_misses"] == 1
        assert stats["ckpt_entries"] == 1

    def test_entries_lists_kind(self, store):
        store.put_ckpt("a" * 24, b"0123456789")
        (entry,) = store.entries(kind="ckpt")
        assert entry["kind"] == "ckpt"
        assert entry["key"] == "a" * 24
        assert entry["size_bytes"] == 10


class TestGC:
    def test_lru_eviction_claims_ckpts(self, store):
        store.put_ckpt("a" * 24, b"x" * 100)
        store.put_ckpt("b" * 24, b"y" * 100)
        store.get_ckpt("a" * 24)  # "a" is now most recently used
        store.gc(max_bytes=150)
        assert store.has_ckpt("a" * 24)
        assert not store.has_ckpt("b" * 24)

    def test_pin_protects_from_full_sweep(self, store):
        store.put_ckpt("a" * 24, b"x" * 100)
        with store.pinned("a" * 24, kind="ckpt"):
            store.gc(max_bytes=0)
            assert store.has_ckpt("a" * 24)
        store.gc(max_bytes=0)
        assert not store.has_ckpt("a" * 24)
