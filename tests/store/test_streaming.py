"""The ``/streams`` API: chunked replay, eviction, restarts, HTTP.

Contract under test: however a stream is chunked, idled out of memory,
or carried across a service restart, the finished session's statistics
row is byte-identical to a one-shot ``POST /runs`` of the same spec.
"""

import json
import threading
import time

import pytest

from repro.run import RunSpec
from repro.service import ServiceClient, ServiceError, make_server
from repro.service.server import ExperimentService
from repro.store import ExperimentStore

SCALE = 0.02


def _spec_dict(**overrides):
    spec = {"workload": "galgel", "mechanism": "DP", "scale": SCALE,
            "params": {"rows": 64}}
    spec.update(overrides)
    return spec


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "store")


@pytest.fixture
def service(store):
    return ExperimentService(store)


def _one_shot_row(service, spec_dict):
    status, payload = service.handle("POST", "/runs", body={"specs": [spec_dict]})
    assert status == 200
    return payload["runs"][0]


class TestStreamRoutes:
    def test_open_reports_stream_geometry(self, service):
        status, opened = service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        assert status == 200
        assert opened["session_id"] == "s1"
        assert opened["offset"] == 0
        assert opened["remaining"] == opened["total"] > 0
        assert not opened["finished"]
        assert opened["spec_key"] == RunSpec.from_dict(_spec_dict()).key()
        assert opened["state_digest"]

    def test_generated_session_ids_are_unique(self, service):
        ids = set()
        for _ in range(3):
            _, opened = service.handle(
                "POST", "/streams", body={"spec": _spec_dict()}
            )
            ids.add(opened["session_id"])
        assert len(ids) == 3

    def test_chunked_stream_matches_one_shot(self, service):
        one_shot = _one_shot_row(service, _spec_dict())
        _, opened = service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        chunk = opened["total"] // 5 + 1
        advanced = 0
        while True:
            status, step = service.handle(
                "POST", "/streams/s1/advance", body={"count": chunk}
            )
            assert status == 200
            advanced += step["advanced"]
            if step["finished"]:
                break
        assert advanced == opened["total"]
        assert json.dumps(step["stats"], sort_keys=True) == json.dumps(
            one_shot, sort_keys=True
        )

    def test_stats_route_does_not_advance(self, service):
        service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        service.handle("POST", "/streams/s1/advance", body={"count": 100})
        for _ in range(2):
            status, stats = service.handle("GET", "/streams/s1/stats")
            assert status == 200
            assert stats["offset"] == 100
        assert stats["stats"]["tlb_misses"] > 0

    def test_advance_without_count_finishes(self, service):
        service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        status, step = service.handle("POST", "/streams/s1/advance", body={})
        assert status == 200 and step["finished"]
        # Advancing a finished stream is a harmless no-op.
        status, step = service.handle("POST", "/streams/s1/advance", body={})
        assert status == 200 and step["advanced"] == 0

    def test_stats_envelope_counts_streams(self, service):
        service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        _, stats = service.handle("GET", "/stats")
        assert stats["streams"] == {"active": 1, "restored": 0, "evicted": 0}


class TestStreamErrors:
    def test_duplicate_session_id_conflicts(self, service):
        service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        status, payload = service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        assert status == 409
        assert "already exists" in payload["error"]

    def test_unknown_session(self, service):
        assert service.handle("POST", "/streams/nope/advance", body={})[0] == 404
        assert service.handle("GET", "/streams/nope/stats")[0] == 404

    def test_bad_bodies(self, service):
        assert service.handle("POST", "/streams", body={})[0] == 400
        assert service.handle("POST", "/streams", body={"spec": 3})[0] == 400
        assert (
            service.handle(
                "POST", "/streams",
                body={"spec": _spec_dict(workload="not-an-app")},
            )[0]
            == 400
        )
        assert (
            service.handle(
                "POST", "/streams", body={"spec": _spec_dict(), "session_id": "a/b"}
            )[0]
            == 400
        )

    def test_bad_count(self, service):
        service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        for count in (-1, 1.5, "ten", True):
            status, payload = service.handle(
                "POST", "/streams/s1/advance", body={"count": count}
            )
            assert status == 400, count
            assert "count" in payload["error"]

    def test_unknown_stream_verb(self, service):
        assert service.handle("POST", "/streams/s1/rewind", body={})[0] == 404
        assert service.handle("GET", "/streams/s1/rewind")[0] == 404

    def test_gc_lost_checkpoint_is_gone(self, service, store):
        _, opened = service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        # Forget the live session, then lose its blob.
        service._sessions.clear()
        store.delete_ckpt(opened["state_digest"])
        status, payload = service.handle("POST", "/streams/s1/advance", body={})
        assert status == 410
        assert "garbage-collected" in payload["error"]


class TestEvictionAndRestore:
    def test_idle_sessions_are_evicted_and_restored_on_touch(self, store):
        service = ExperimentService(store, max_idle_seconds=0.05)
        one_shot = _one_shot_row(service, _spec_dict())
        service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        service.handle("POST", "/streams/s1/advance", body={"count": 500})
        time.sleep(0.1)
        # Any stream POST sweeps idle sessions out of memory.
        service.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s2"}
        )
        assert "s1" not in service._sessions
        _, stats = service.handle("GET", "/stats")
        assert stats["streams"]["evicted"] == 1
        # ...but the next touch restores s1 exactly where it paused.
        status, step = service.handle("POST", "/streams/s1/advance", body={})
        assert status == 200 and step["finished"]
        assert json.dumps(step["stats"], sort_keys=True) == json.dumps(
            one_shot, sort_keys=True
        )
        _, stats = service.handle("GET", "/stats")
        assert stats["streams"]["restored"] == 1

    def test_stream_survives_a_service_restart(self, store):
        first = ExperimentService(store)
        one_shot = _one_shot_row(first, _spec_dict())
        first.handle(
            "POST", "/streams", body={"spec": _spec_dict(), "session_id": "s1"}
        )
        first.handle("POST", "/streams/s1/advance", body={"count": 700})

        # A brand-new service over the same store: no memory of s1.
        reborn = ExperimentService(ExperimentStore(store.root))
        status, stats = reborn.handle("GET", "/streams/s1/stats")
        assert status == 200 and stats["offset"] == 700
        status, step = reborn.handle("POST", "/streams/s1/advance", body={})
        assert status == 200 and step["finished"]
        assert json.dumps(step["stats"], sort_keys=True) == json.dumps(
            one_shot, sort_keys=True
        )


class TestOverHTTP:
    @pytest.fixture
    def server(self, tmp_path):
        server = make_server(tmp_path / "store", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    @pytest.fixture
    def client(self, server):
        client = ServiceClient(server.url)
        client.wait_healthy()
        return client

    def test_client_wrappers_round_trip(self, client):
        one_shot = client.submit([_spec_dict()])["runs"][0]
        opened = client.stream_open(_spec_dict(), session_id="s one")
        assert opened["session_id"] == "s one"  # ids are URL-quoted
        step = client.stream_advance("s one", count=opened["total"] // 2)
        assert 0 < step["offset"] < opened["total"]
        assert client.stream_stats("s one")["offset"] == step["offset"]
        final = client.stream_advance("s one", timeout=120.0)
        assert final["finished"]
        assert json.dumps(final["stats"], sort_keys=True) == json.dumps(
            one_shot, sort_keys=True
        )

    def test_http_errors_carry_payloads(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.stream_advance("missing")
        assert excinfo.value.status == 404
        client.stream_open(_spec_dict(), session_id="dup")
        with pytest.raises(ServiceError) as excinfo:
            client.stream_open(_spec_dict(), session_id="dup")
        assert excinfo.value.status == 409

    def test_per_request_timeout_override(self, client, monkeypatch):
        import urllib.request

        seen = []
        real_urlopen = urllib.request.urlopen

        def spying_urlopen(request, timeout=None):
            seen.append(timeout)
            return real_urlopen(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", spying_urlopen)
        client.request("/stats", timeout=123.0)
        client.request("/stats")
        assert seen == [123.0, client.timeout]
