"""Service smoke tests: every route, over real HTTP and in-process.

``make_server(port=0)`` binds an ephemeral port, so the suite runs a
live threaded server and talks to it through the stdlib
:class:`~repro.service.client.ServiceClient` — the same path the CI
``store-smoke`` scripted client uses.
"""

import threading

import pytest

from repro.run import MissStreamCache, Runner, RunSpec
from repro.service import SERVICE_SCHEMA, ExperimentService, ServiceClient, ServiceError, make_server
from repro.store import ExperimentStore

SCALE = 0.05

SPEC_PAYLOAD = {
    "workload": "galgel",
    "mechanism": "DP",
    "scale": SCALE,
    "params": {"rows": 256, "slots": 2},
}


@pytest.fixture
def server(tmp_path):
    server = make_server(tmp_path / "store", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def client(server):
    client = ServiceClient(server.url)
    client.wait_healthy()
    return client


class TestRoutes:
    def test_stats_exposes_store_and_stream_cache(self, client):
        payload = client.stats()
        assert payload["schema"] == SERVICE_SCHEMA
        assert payload["store"]["result_entries"] == 0
        assert set(payload["stream_cache"]) == {
            "entries", "maxsize", "hits", "misses", "evictions",
        }

    def test_submit_then_query_round_trip(self, client):
        submitted = client.submit([SPEC_PAYLOAD])
        assert submitted["count"] == 1
        assert submitted["store_misses"] == 1
        (key,) = submitted["keys"]
        assert key == RunSpec.from_dict(SPEC_PAYLOAD).key()

        fetched = client.run(key)
        assert fetched["run"]["workload"] == "galgel"
        assert fetched["run"]["extra"]["spec_key"] == key

        results = client.results(workload="galgel", mechanism_name="DP")
        assert results["count"] == 1
        assert results["runs"][0]["extra"]["spec_key"] == key
        assert client.results(workload="nonexistent")["count"] == 0

    def test_resubmit_served_from_store(self, client):
        client.submit([SPEC_PAYLOAD])
        again = client.submit([SPEC_PAYLOAD])
        assert again["store_hits"] == 1
        assert again["store_misses"] == 0

    def test_results_coerces_numeric_filters(self, client):
        client.submit([SPEC_PAYLOAD])
        assert client.results(page_size=4096)["count"] == 1
        assert client.results(page_size=8192)["count"] == 0

    def test_filter_values_are_url_encoded(self, client):
        # A value with spaces/& must round-trip, not raise InvalidURL or
        # silently split into bogus extra filters.
        assert client.results(workload="my trace & co")["count"] == 0

    def test_concurrent_submits_report_their_own_hits(self, server):
        """Per-request hit accounting must not absorb other requests'
        lookups (it probes the index, not global counter deltas)."""
        import concurrent.futures

        first = ServiceClient(server.url)
        first.wait_healthy()
        first.submit([SPEC_PAYLOAD])  # pre-store the spec
        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            batches = list(
                pool.map(
                    lambda _: ServiceClient(server.url).submit([SPEC_PAYLOAD]),
                    range(4),
                )
            )
        for batch in batches:
            assert batch["store_hits"] == 1
            assert batch["store_misses"] == 0

    def test_unknown_run_is_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.run("0" * 16)
        assert exc_info.value.status == 404

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.submit([{"workload": "galgel", "bogus": 1}])
        assert exc_info.value.status == 400
        assert "bogus" in str(exc_info.value)

    def test_unknown_filter_field_is_400(self, client):
        client.submit([SPEC_PAYLOAD])
        with pytest.raises(ServiceError) as exc_info:
            client.results(flavour="salty")
        assert exc_info.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.request("/nope")
        assert exc_info.value.status == 404


class TestServiceInProcess:
    """Route-table behaviour that needs no sockets."""

    def test_post_runs_requires_specs_list(self, tmp_path):
        service = ExperimentService(ExperimentStore(tmp_path / "store"))
        status, payload = service.handle("POST", "/runs", {}, {"specs": "galgel"})
        assert status == 400
        assert "specs" in payload["error"]

    def test_post_runs_validates_workers(self, tmp_path):
        service = ExperimentService(ExperimentStore(tmp_path / "store"))
        status, payload = service.handle(
            "POST", "/runs", {}, {"specs": [], "workers": -2}
        )
        assert status == 400
        assert "workers" in payload["error"]

    def test_malformed_run_key_is_400(self, tmp_path):
        service = ExperimentService(ExperimentStore(tmp_path / "store"))
        status, _ = service.handle("GET", "/runs/a/b", {})
        assert status == 400

    def test_service_shares_the_runner_store(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        # Pre-populate through a plain Runner: the service must see it.
        spec = RunSpec.from_dict(SPEC_PAYLOAD)
        Runner(cache=MissStreamCache(), store=store).run([spec])
        service = ExperimentService(store)
        status, payload = service.handle("GET", f"/runs/{spec.key()}", {})
        assert status == 200
        assert payload["run"]["extra"]["spec_key"] == spec.key()
        status, payload = service.handle(
            "POST", "/runs", {}, {"specs": [SPEC_PAYLOAD]}
        )
        assert status == 200
        assert payload["store_hits"] == 1
